#include "core/cohesion.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace clc::core {

namespace {

std::string join_names(const std::set<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += '\n';
    out += n;
  }
  return out;
}

std::set<std::string> split_names(const std::string& joined) {
  std::set<std::string> out;
  for (const auto& part : split(joined, '\n')) {
    if (!part.empty()) out.insert(part);
  }
  return out;
}

std::vector<QueryHit> digest_hits(const ComponentQuery& q,
                                  const RegistryDigest& digest) {
  std::vector<QueryHit> hits;
  for (const auto& c : digest.components) {
    if (!q.matches(c)) continue;
    QueryHit h;
    h.node = digest.node;
    h.component = c.name;
    h.version = c.version;
    h.mobile = c.mobile;
    h.cost_per_use = c.cost_per_use;
    h.node_cpu_load = digest.cpu_load;
    h.node_device = digest.device;
    hits.push_back(std::move(h));
  }
  return hits;
}

bool names_may_match(const ComponentQuery& q,
                     const std::set<std::string>& labels) {
  for (const auto& label : labels) {
    const auto at = label.rfind('@');
    const std::string_view name(label.data(),
                                at == std::string::npos ? label.size() : at);
    if (!glob_match(q.name_pattern, name)) continue;
    if (at == std::string::npos) return true;  // versionless label: assume yes
    auto v = Version::parse(label.substr(at + 1));
    if (!v.ok() || q.constraint.matches(*v)) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Directory

bool CohesionNode::Directory::contains(NodeId n) const {
  return std::find(join_order.begin(), join_order.end(), n) !=
         join_order.end();
}

void CohesionNode::Directory::add(NodeId n) {
  if (!contains(n)) join_order.push_back(n);
}

void CohesionNode::Directory::remove(NodeId n) {
  join_order.erase(std::remove(join_order.begin(), join_order.end(), n),
                   join_order.end());
}

Bytes CohesionNode::Directory::encode() const {
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_ulong(static_cast<std::uint32_t>(join_order.size()));
  for (NodeId n : join_order) w.write_ulonglong(n.value);
  return w.take();
}

Result<CohesionNode::Directory> CohesionNode::Directory::decode(
    BytesView data) {
  orb::CdrReader r(data);
  if (auto enc = r.begin_encapsulation(); !enc.ok()) return enc.error();
  auto count = r.read_ulong();
  if (!count) return count.error();
  Directory d;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto v = r.read_ulonglong();
    if (!v) return v.error();
    d.join_order.push_back(NodeId{*v});
  }
  return d;
}

// ---------------------------------------------------------------------------
// Construction / start

CohesionNode::CohesionNode(NodeId id, CohesionConfig cfg, Sender send,
                           obs::MetricsRegistry* metrics)
    : id_(id),
      cfg_(cfg),
      send_(std::move(send)),
      owned_metrics_(metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(metrics != nullptr ? metrics : owned_metrics_.get()),
      heartbeats_sent_(&metrics_->counter("cohesion.heartbeats_sent")),
      beacons_sent_(&metrics_->counter("cohesion.beacons_sent")),
      queries_issued_(&metrics_->counter("cohesion.queries_issued")),
      queries_answered_(&metrics_->counter("cohesion.queries_answered")),
      topology_updates_(&metrics_->counter("cohesion.topology_updates")),
      promotions_(&metrics_->counter("cohesion.promotions")),
      fenced_stale_(&metrics_->counter("cohesion.fenced_stale")),
      fenced_cross_zone_(&metrics_->counter("cohesion.fenced_cross_zone")),
      slow_marked_(&metrics_->counter("cohesion.slow_marked")),
      slow_recovered_(&metrics_->counter("cohesion.slow_recovered")),
      phi_suspects_(&metrics_->counter("cohesion.phi_suspects")) {}

// ---------------------------------------------------------------------------
// Adaptive (phi-accrual) failure detection — DESIGN.md §17

void CohesionNode::record_arrival(NodeId from, TimePoint now) {
  if (!cfg_.adaptive || from == id_ || !from.valid()) return;
  auto it = arrivals_.find(from);
  if (it == arrivals_.end()) {
    PhiConfig pc;
    pc.expected_interval = cfg_.heartbeat;
    pc.window = cfg_.phi_window;
    pc.min_samples = cfg_.phi_min_samples;
    pc.min_stddev_fraction = cfg_.phi_min_stddev_fraction;
    pc.slow_factor = cfg_.slow_factor;
    pc.slow_recover_factor = cfg_.slow_recover_factor;
    it = arrivals_.emplace(from, PhiAccrualDetector(pc)).first;
  }
  it->second.record_arrival(now);
  const bool was_slow = slow_peers_.count(from) != 0;
  if (it->second.slow() && !was_slow) {
    slow_peers_.insert(from);
    slow_marked_->inc();
    note_transition("slow:" + from.to_string());
  } else if (!it->second.slow() && was_slow) {
    slow_peers_.erase(from);
    slow_recovered_->inc();
    note_transition("slow_recovered:" + from.to_string());
  }
}

double CohesionNode::phi_of(NodeId n, TimePoint now) const {
  auto it = arrivals_.find(n);
  if (it == arrivals_.end()) return 0.0;
  return it->second.phi(now - it->second.last_arrival());
}

bool CohesionNode::phi_says_suspect(NodeId n, Duration silence) const {
  if (!cfg_.adaptive) return false;
  auto it = arrivals_.find(n);
  if (it == arrivals_.end() || !it->second.warmed() || it->second.slow())
    return false;
  return it->second.phi(silence) >= cfg_.phi_suspect;
}

bool CohesionNode::phi_says_dead(NodeId n, Duration silence) const {
  if (!cfg_.adaptive) return false;
  auto it = arrivals_.find(n);
  if (it == arrivals_.end() || !it->second.warmed() || it->second.slow())
    return false;
  return it->second.phi(silence) >= cfg_.phi_dead;
}

ProtoMessage CohesionNode::make(const std::string& kind) const {
  ProtoMessage m;
  m.kind = kind;
  m.sender = id_;
  // Elided at the first incarnation so never-crashed networks pay zero
  // extra bytes; receivers default a missing field to 1.
  if (incarnation_ > 1)
    m.set_int("inc", static_cast<std::int64_t>(incarnation_));
  // Same elision for the partition epoch: never-partitioned networks pay
  // zero extra bytes.
  if (epoch_ > 1) m.set_int("ep", static_cast<std::int64_t>(epoch_));
  // Zone id, elided for unzoned (single-zone) networks: their frames stay
  // byte-identical to the pre-zone protocol (wire_golden_test pins this).
  if (cfg_.zone != 0) m.set_int("zn", static_cast<std::int64_t>(cfg_.zone));
  return m;
}

void CohesionNode::send(NodeId to, ProtoMessage m) const {
  if (to == id_ || !to.valid()) return;
  send_(to, m);
}

void CohesionNode::start_as_first(TimePoint now) {
  joined_ = true;
  current_root_ = id_;
  last_heartbeat_ = now;
  last_beacon_ = now;
  if (cfg_.mode == CohesionConfig::Mode::hierarchical) {
    root_ = true;
    directory_.add(id_);
    note_role(true);
  } else {
    roster_.insert(id_);
  }
}

void CohesionNode::start_joining(NodeId bootstrap, TimePoint now) {
  bootstrap_ = bootstrap;
  join_started_ = now;
  last_heartbeat_ = now;
  last_beacon_ = now;
  send(bootstrap, make("join"));
}

void CohesionNode::restart(TimePoint now) {
  joined_ = false;
  root_ = false;
  parent_ = NodeId{};
  children_.clear();
  parent_last_heard_ = 0;
  last_heartbeat_ = now;
  last_beacon_ = now;
  bootstrap_ = NodeId{};
  join_started_ = 0;
  directory_ = Directory{};
  have_directory_copy_ = false;
  replica_rank_ = 0;
  root_death_detected_ = 0;
  current_root_ = NodeId{};
  last_published_.clear();
  probe_pending_.clear();
  republish_countdown_ = 0;
  roster_.clear();
  full_registry_.clear();
  roster_last_heard_.clear();
  pending_.clear();
  relayed_.clear();
  peer_incarnations_.clear();
  tombstones_.clear();
  last_anti_entropy_ = now;
  ae_rotor_ = 0;
  suspected_.clear();
  probe_votes_.clear();
  indirect_probes_.clear();
  promotion_acks_.clear();
  promotion_poll_last_ = 0;
  last_rejoin_attempt_ = 0;
  claims_.clear();
  arrivals_.clear();
  slow_peers_.clear();
  // The epoch survives a restart conceptually, but it lived in RAM: the
  // reborn node re-learns the network's epoch from the first admitted
  // message (monotone max), which is all correctness needs.
  epoch_ = 1;
  note_role(false);
}

// ---------------------------------------------------------------------------
// Crash fault handling: incarnation fencing, tombstones, anti-entropy

bool CohesionNode::admit_message(const ProtoMessage& m) {
  const NodeId from = m.sender;
  if (from == id_ || !from.valid()) return true;
  // Zone fence: a zoned node runs cohesion only with its own zone. A frame
  // from another zone (a misrouted join after failover, a stale bootstrap)
  // must not graft a foreign tree onto ours. Unzoned frames ("zn" elided)
  // pass, so flat single-zone deployments are unaffected.
  const auto zn = static_cast<std::uint32_t>(m.field_int("zn", 0));
  if (cfg_.zone != 0 && zn != 0 && zn != cfg_.zone) {
    fenced_cross_zone_->inc();
    return false;
  }
  const auto inc = static_cast<std::uint64_t>(m.field_int("inc", 1));
  auto known = peer_incarnations_.find(from);
  if (known != peer_incarnations_.end() && inc < known->second) {
    fenced_stale_->inc();  // pre-crash frame outlived its sender
    return false;
  }
  if (auto tomb = tombstones_.find(from); tomb != tombstones_.end()) {
    if (inc < tomb->second) {
      fenced_stale_->inc();
      return false;
    }
    // Equal incarnation: the death verdict was wrong (partition, lost
    // probes) and the node is still alive. Higher: it restarted. Either
    // way the tombstone is obsolete.
    const bool revived = inc == tomb->second;
    tombstones_.erase(tomb);
    if (revived && revived_handler_) revived_handler_(from, inc);
    // A false death discovered by the *root* means the node should rejoin
    // the membership directory (it never actually left the network).
    if (revived && root_ && !directory_.contains(from)) directory_.add(from);
  }
  // Adopt the network's partition epoch (monotone max) -- but never while
  // we hold the root role: a root's epoch reflects its *own* quorum-
  // confirmed history, and is what the split-brain tie-break compares. A
  // healed minority root that adopted the majority's epoch from probe acks
  // would turn the tie-break into lowest-id and could steal the role back.
  // Roots advance their epoch only through verdicts, or by losing the
  // root_announce comparison (which demotes them first).
  const auto ep = static_cast<std::uint64_t>(m.field_int("ep", 1));
  if (ep > epoch_ && !root_) epoch_ = ep;
  auto& slot = peer_incarnations_[from];
  if (inc > slot) {
    // A reborn node starts from an empty registry: whatever we cached
    // about its previous life is stale by definition.
    if (slot != 0) purge_peer_state(from);
    slot = inc;
  }
  return true;
}

void CohesionNode::purge_peer_state(NodeId n) {
  children_.erase(n);
  full_registry_.erase(n);
  roster_.erase(n);
  roster_last_heard_.erase(n);
  probe_pending_.erase(n);
  suspected_.erase(n);
  probe_votes_.erase(n);
  indirect_probes_.erase(n);
  arrivals_.erase(n);
  slow_peers_.erase(n);
}

void CohesionNode::clear_suspicion(NodeId n) {
  if (suspected_.erase(n) != 0) note_transition("unsuspected:" + n.to_string());
  probe_pending_.erase(n);
  probe_votes_.erase(n);
}

std::size_t CohesionNode::quorum_needed() const {
  // Majority of the full membership directory (the suspect included: the
  // denominator must not shrink just because we stopped hearing nodes). A
  // 2-node network cannot form a majority that excludes the suspect, so it
  // falls back to the single observer's verdict.
  const std::size_t n = directory_.join_order.size();
  return n <= 2 ? 1 : n / 2 + 1;
}

void CohesionNode::root_begin_probe(NodeId suspect, TimePoint now) {
  if (probe_pending_.count(suspect) != 0) return;
  probe_pending_[suspect] = now;
  probe_votes_[suspect].clear();
  send(suspect, make("probe"));
  if (suspected_.insert(suspect).second) {
    metrics_->counter("cohesion.suspected").inc();
    note_transition("suspected:" + suspect.to_string());
  }
  // Fan out indirect-reachability requests: peers probe the suspect from
  // their side of the network and report back. Their votes are what turns
  // a timeout into a quorum-backed death verdict.
  ProtoMessage req = make("probe_req");
  req.set_int("node", static_cast<std::int64_t>(suspect.value));
  // Copy: reply chains admit revived peers into the directory mid-loop.
  const std::vector<NodeId> members = directory_.join_order;
  for (NodeId n : members) {
    if (n == id_ || n == suspect || suspected_.count(n) != 0) continue;
    send(n, req);
  }
}

void CohesionNode::note_death(NodeId dead, std::uint64_t dead_inc,
                              std::vector<NodeId> alive, TimePoint now,
                              bool broadcast) {
  if (dead == id_) return;
  if (auto it = tombstones_.find(dead);
      it != tombstones_.end() && it->second >= dead_inc)
    return;  // already processed this (or a later) death
  if (auto it = peer_incarnations_.find(dead); it != peer_incarnations_.end())
    dead_inc = std::max(dead_inc, it->second);
  tombstones_[dead] = dead_inc;
  metrics_->counter("cohesion.tombstones_set").inc();
  purge_peer_state(dead);
  if (broadcast) {
    ProtoMessage m = make("node_dead");
    m.set_int("node", static_cast<std::int64_t>(dead.value));
    m.set_int("dead_inc", static_cast<std::int64_t>(dead_inc));
    m.blob = directory_.encode();
    // Copy: failover traffic triggered by the broadcast can re-enter and
    // reshape the directory under the loop.
    const std::vector<NodeId> members = directory_.join_order;
    for (NodeId n : members) send(n, m);
  }
  if (dead_handler_) dead_handler_(dead, dead_inc, std::move(alive));
  (void)now;
}

Bytes CohesionNode::encode_incarnation_table(TimePoint now) const {
  // Entries: (node, incarnation, tombstoned?, vouched-alive?) for every
  // node we have an opinion about, including ourselves. The vouch bit is
  // strictly FIRST-HAND evidence -- a parent/child/roster member actually
  // heard from within the suspect window. Structural membership (a root
  // replica's directory copy) is deliberately not enough: a replica would
  // otherwise vouch for every member, and such a stale second-hand vouch
  // in flight across a quorum-confirmed death verdict would resurrect the
  // dead node in the directory. First-hand vouches still let an equal-
  // incarnation false death propagate its *revival* through gossip after a
  // heal, not just through direct contact.
  std::map<NodeId, std::pair<std::uint64_t, bool>> entries;
  for (const auto& [n, inc] : peer_incarnations_) entries[n] = {inc, false};
  for (const auto& [n, inc] : tombstones_) {
    auto& e = entries[n];
    e.first = std::max(e.first, inc);
    e.second = true;
  }
  entries[id_] = {incarnation_, false};
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_ulong(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [n, e] : entries) {
    w.write_ulonglong(n.value);
    w.write_ulonglong(e.first);
    w.write_boolean(e.second);
    w.write_boolean(!e.second && heard_recently(n, now) && !is_suspected(n));
  }
  // Partition-epoch + failover-claim tail: how diverged histories reconcile
  // after a heal (registry anti-entropy extended with partition epochs).
  w.write_ulonglong(epoch_);
  std::vector<const FailoverClaim*> live_claims;
  for (const auto& [key, c] : claims_) {
    // A restarted origin moots the claim: its old instance died with it.
    if (known_incarnation(c.origin) > c.origin_inc) continue;
    live_claims.push_back(&c);
  }
  w.write_ulong(static_cast<std::uint32_t>(live_claims.size()));
  for (const FailoverClaim* c : live_claims) {
    w.write_ulonglong(c->origin.value);
    w.write_ulonglong(c->origin_inc);
    w.write_ulonglong(c->instance);
    w.write_ulonglong(c->epoch);
    w.write_ulonglong(c->host.value);
  }
  return w.take();
}

void CohesionNode::add_failover_claim(const FailoverClaim& claim) {
  const auto key = std::make_pair(claim.origin.value, claim.instance);
  auto it = claims_.find(key);
  if (it != claims_.end()) {
    // Deterministic dominance: higher epoch, then higher origin
    // incarnation, then lower host id. Both sides of a heal apply the same
    // order, so they agree on the surviving copy.
    const FailoverClaim& have = it->second;
    const bool better =
        claim.epoch != have.epoch ? claim.epoch > have.epoch
        : claim.origin_inc != have.origin_inc
            ? claim.origin_inc > have.origin_inc
            : claim.host.value < have.host.value;
    if (!better) return;
  }
  claims_[key] = claim;
}

std::vector<FailoverClaim> CohesionNode::failover_claims() const {
  std::vector<FailoverClaim> out;
  out.reserve(claims_.size());
  for (const auto& [key, c] : claims_) out.push_back(c);
  return out;
}

bool CohesionNode::heard_recently(NodeId n, TimePoint now) const {
  if (n == id_) return true;
  const Duration window = cfg_.suspect_after * cfg_.heartbeat;
  if (joined_ && !root_ && n == parent_)
    return parent_last_heard_ > 0 && now - parent_last_heard_ <= window;
  if (auto it = children_.find(n); it != children_.end())
    return !it->second.suspect && it->second.last_heard > 0 &&
           now - it->second.last_heard <= window;
  if (auto it = roster_last_heard_.find(n); it != roster_last_heard_.end())
    return now - it->second <= window;
  return false;
}

bool CohesionNode::believes_alive(NodeId n) const {
  if (n == id_) return true;
  if (joined_ && !root_ && n == parent_) return true;
  if (children_.count(n) != 0) return true;
  if (roster_.count(n) != 0) return true;
  if ((root_ || have_directory_copy_) && directory_.contains(n)) return true;
  return false;
}

void CohesionNode::merge_incarnation_table(BytesView data, TimePoint now) {
  orb::CdrReader r(data);
  if (!r.begin_encapsulation().ok()) return;
  auto count = r.read_ulong();
  if (!count) return;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto node = r.read_ulonglong();
    if (!node) return;
    auto inc = r.read_ulonglong();
    if (!inc) return;
    auto tomb = r.read_boolean();
    if (!tomb) return;
    auto vouch = r.read_boolean();
    if (!vouch) return;
    const NodeId n{*node};
    if (n == id_) continue;  // nobody outranks us on our own liveness
    auto& slot = peer_incarnations_[n];
    const std::uint64_t prev = slot;
    if (*inc > prev) {
      if (prev != 0) {
        purge_peer_state(n);
        metrics_->counter("cohesion.ae_purged").inc();
      }
      slot = *inc;
      // A higher incarnation proves a rebirth: any tombstone from the
      // previous life is obsolete.
      if (auto t = tombstones_.find(n);
          t != tombstones_.end() && t->second < *inc)
        tombstones_.erase(t);
    }
    if (*tomb && tombstones_.count(n) == 0 &&
        (*inc > prev || (*inc == prev && !believes_alive(n)))) {
      // Learned of a death we missed (e.g. we were partitioned away when
      // the root confirmed it). Stop serving the dead host's entries. An
      // *equal*-incarnation tombstone is adopted only when we don't see the
      // node alive first-hand: it may be stale news about a member that has
      // since revived seamlessly, and re-adopting it would purge a live
      // child between two of its heartbeats.
      tombstones_[n] = *inc;
      metrics_->counter("cohesion.ae_purged").inc();
      purge_peer_state(n);
    } else if (*vouch && !*tomb) {
      // The peer sees `n` alive first-hand at this incarnation: an
      // equal-incarnation tombstone we hold records a false death (the
      // node was partitioned away, not dead). Revive it so the dual-
      // primary resolution at the Node layer can run even when the
      // revived node never talks to us directly.
      if (auto t = tombstones_.find(n);
          t != tombstones_.end() && t->second == *inc) {
        tombstones_.erase(t);
        metrics_->counter("cohesion.ae_revived").inc();
        if (revived_handler_) revived_handler_(n, *inc);
        if (root_ && !directory_.contains(n)) directory_.add(n);
      }
    }
  }
  // Epoch + failover-claim tail. Older tables simply end here; a failed
  // read leaves the claim set untouched. Roots never adopt gossiped epochs
  // (same rule as admit_message): the tie-break depends on a root's epoch
  // reflecting only its own quorum-confirmed history.
  if (auto ep = r.read_ulonglong(); ep && *ep > epoch_ && !root_)
    epoch_ = *ep;
  auto claim_count = r.read_ulong();
  if (!claim_count) return;
  for (std::uint32_t i = 0; i < *claim_count; ++i) {
    auto origin = r.read_ulonglong();
    auto origin_inc = r.read_ulonglong();
    auto instance = r.read_ulonglong();
    auto epoch = r.read_ulonglong();
    auto host = r.read_ulonglong();
    if (!origin || !origin_inc || !instance || !epoch || !host) return;
    FailoverClaim c;
    c.origin = NodeId{*origin};
    c.origin_inc = *origin_inc;
    c.instance = *instance;
    c.epoch = *epoch;
    c.host = NodeId{*host};
    if (known_incarnation(c.origin) > c.origin_inc) continue;  // moot
    const auto key = std::make_pair(c.origin.value, c.instance);
    const auto before = claims_.find(key);
    const bool had = before != claims_.end() && before->second == c;
    add_failover_claim(c);
    if (!had && claim_handler_) claim_handler_(c);
  }
  (void)now;
}

void CohesionNode::send_anti_entropy(TimePoint now) {
  // One partner per round, rotated deterministically: the parent when we
  // have one (hierarchical leaf/interior), otherwise round-robin over the
  // nodes we know (root over its directory, flat/strong over the roster).
  // Suspected peers are skipped instead of burning the round on a partner
  // that cannot answer ("registry.antientropy_skipped" counts each skip).
  obs::Counter& skipped = metrics_->counter("registry.antientropy_skipped");
  const Duration t = cfg_.heartbeat;
  NodeId target{};
  const bool parent_suspect =
      parent_.valid() && parent_last_heard_ > 0 &&
      now - parent_last_heard_ > cfg_.suspect_after * t;
  if (cfg_.mode == CohesionConfig::Mode::hierarchical && parent_.valid() &&
      !parent_suspect) {
    target = parent_;
  } else {
    if (parent_suspect) skipped.inc();
    std::vector<NodeId> peers = known_nodes();
    peers.erase(std::remove_if(peers.begin(), peers.end(),
                               [&](NodeId n) {
                                 if (n == id_) return true;
                                 if (n == parent_ && parent_suspect)
                                   return true;  // already counted above
                                 if (is_suspected(n) ||
                                     tombstones_.count(n) != 0) {
                                   skipped.inc();
                                   return true;
                                 }
                                 return false;
                               }),
                peers.end());
    if (peers.empty()) return;
    target = peers[ae_rotor_++ % peers.size()];
  }
  ProtoMessage m = make("ae_sync");
  m.blob = encode_incarnation_table(now);
  send(target, m);
  metrics_->counter("cohesion.ae_rounds").inc();
}

// ---------------------------------------------------------------------------
// Tree computation (root)

std::map<NodeId, NodeId> CohesionNode::compute_tree() const {
  std::map<NodeId, NodeId> parent_of;
  std::vector<NodeId> level = directory_.join_order;
  const std::size_t g = std::max<std::size_t>(cfg_.group_size, 2);
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t start = 0; start < level.size(); start += g) {
      const std::size_t end = std::min(start + g, level.size());
      const NodeId mrm = level[start];
      for (std::size_t i = start + 1; i < end; ++i) parent_of[level[i]] = mrm;
      next.push_back(mrm);
    }
    level = std::move(next);
  }
  return parent_of;
}

void CohesionNode::root_recompute_and_publish(TimePoint now) {
  const auto tree = compute_tree();
  // Copy: topology pushes trigger synchronous joins that grow join_order.
  const std::vector<NodeId> members = directory_.join_order;
  for (NodeId n : members) {
    // A topology push can synchronously trigger a root contest we lose;
    // once demoted (now carrying the winner's epoch) any further pushes
    // would be accepted downstream and steal the winner's children.
    if (!root_) return;
    if (n == id_) continue;
    auto it = tree.find(n);
    const NodeId parent = it == tree.end() ? id_ : it->second;
    // Publish only deltas: nodes whose parent changed since the last push.
    auto last = last_published_.find(n);
    if (last != last_published_.end() && last->second == parent) continue;
    last_published_[n] = parent;
    ProtoMessage m = make("topology");
    m.set_int("parent", static_cast<std::int64_t>(parent.value));
    send(n, m);
    topology_updates_->inc();
    // Tell the parent to expect this child: if the child never heartbeats
    // (e.g. it died together with its previous parent), the new parent
    // times it out and reports it -- no directory entry can go unvouched.
    if (parent == id_) {
      auto& info = children_[n];
      if (info.last_heard == 0) info.last_heard = now;
    } else {
      ProtoMessage expect = make("expect_child");
      expect.set_int("node", static_cast<std::int64_t>(n.value));
      send(parent, expect);
    }
  }
  // Drop stale publication records for departed nodes.
  for (auto it = last_published_.begin(); it != last_published_.end();) {
    if (!directory_.contains(it->first)) {
      it = last_published_.erase(it);
    } else {
      ++it;
    }
  }
  // Sync the directory to replica children (peer-replicated MRM guideline).
  const auto replicas = root_replica_list();
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    ProtoMessage m = make("dir_sync");
    m.set_int("rank", static_cast<std::int64_t>(i));
    m.blob = directory_.encode();
    send(replicas[i], m);
  }
  (void)now;
}

std::vector<NodeId> CohesionNode::root_replica_list() const {
  // The first `root_replicas` direct children of the root, in directory
  // order (deterministic, so every replica can compute its own rank).
  const auto tree = compute_tree();
  std::vector<NodeId> replicas;
  for (NodeId n : directory_.join_order) {
    if (n == id_) continue;
    auto it = tree.find(n);
    const NodeId parent = it == tree.end() ? id_ : it->second;
    if (parent == id_) {
      replicas.push_back(n);
      if (replicas.size() >= static_cast<std::size_t>(cfg_.root_replicas))
        break;
    }
  }
  return replicas;
}

void CohesionNode::adopt_topology(NodeId new_parent, TimePoint now) {
  if (new_parent != parent_)
    note_transition("parent:" + new_parent.to_string());
  parent_ = new_parent;
  joined_ = true;
  parent_last_heard_ = now;
  root_death_detected_ = 0;
  promotion_acks_.clear();
}

void CohesionNode::handle_member_dead(NodeId dead, TimePoint now) {
  if (!root_) return;
  if (dead == id_) return;
  if (!directory_.contains(dead)) return;
  directory_.remove(dead);
  clear_suspicion(dead);
  suspected_.erase(dead);
  // A quorum-confirmed verdict opens a new partition epoch: everything the
  // survivors decide from here (failover elections, restored instances) is
  // stamped newer than anything the cut-off side can produce.
  ++epoch_;
  note_transition("death:" + dead.to_string());
  root_recompute_and_publish(now);
  // MRM-confirmed death: tombstone it, tell every member (they purge their
  // caches and the checkpoint holders among them start failover).
  note_death(dead, known_incarnation(dead) == 0 ? 1 : known_incarnation(dead),
             directory_.join_order, now, /*broadcast=*/true);
}

void CohesionNode::promote_to_root(TimePoint now) {
  promotions_->inc();
  const NodeId dead_root = current_root_;
  directory_.remove(current_root_);
  directory_.remove(id_);
  directory_.join_order.insert(directory_.join_order.begin(), id_);
  root_ = true;
  current_root_ = id_;
  parent_ = NodeId{};
  root_death_detected_ = 0;
  promotion_acks_.clear();
  promotion_poll_last_ = 0;
  // Promotion opens a new epoch (the old root's reign is over); the bumped
  // value rides the root_announce below, so a healed ex-root loses the
  // split-brain tie-break against us.
  ++epoch_;
  note_transition("promoted");
  note_role(true);
  last_published_.clear();  // push fresh topology to everyone
  root_recompute_and_publish(now);
  // Copy: join replies triggered by the announce mutate join_order.
  const std::vector<NodeId> members = directory_.join_order;
  for (NodeId n : members) send(n, make("root_announce"));
  if (dead_root.valid())
    note_death(dead_root,
               known_incarnation(dead_root) == 0 ? 1
                                                 : known_incarnation(dead_root),
               directory_.join_order, now, /*broadcast=*/true);
}

bool CohesionNode::contest_root(NodeId rival, std::uint64_t rival_epoch) {
  // Deterministic on both sides: the higher partition epoch wins (it
  // carries the quorum-confirmed history); equal epochs fall back to the
  // lower node id.
  const bool they_win = rival_epoch != epoch_ ? rival_epoch > epoch_
                                              : rival.value < id_.value;
  if (they_win) {
    if (rival_epoch > epoch_) epoch_ = rival_epoch;
    demote_from_root(rival);
    return false;
  }
  send(rival, make("root_announce"));  // re-assert; the rival will demote
  return true;
}

void CohesionNode::demote_from_root(NodeId winner) {
  root_ = false;
  have_directory_copy_ = false;  // our copy reflects the losing history
  last_published_.clear();
  // The winner re-parents our ex-children through its own topology pushes;
  // keeping them here would pin their pre-heal digests (and an eternal
  // suspect flag) under every future query's coverage check.
  children_.clear();
  probe_pending_.clear();
  probe_votes_.clear();
  suspected_.clear();
  promotion_acks_.clear();
  root_death_detected_ = 0;
  current_root_ = winner;
  note_transition("demoted");
  note_role(false);
  send(winner, make("join"));
}

// ---------------------------------------------------------------------------
// Digests / heartbeats

std::set<std::string> CohesionNode::aggregate_names() const {
  std::set<std::string> names;
  for (const auto& c : own_digest().components)
    names.insert(component_label(c));
  for (const auto& [child, info] : children_)
    names.insert(info.subtree_names.begin(), info.subtree_names.end());
  return names;
}

RegistryDigest CohesionNode::own_digest() const {
  if (digest_provider_) {
    RegistryDigest d = digest_provider_();
    d.node = id_;
    d.incarnation = incarnation_;
    return d;
  }
  RegistryDigest d;
  d.node = id_;
  d.incarnation = incarnation_;
  return d;
}

void CohesionNode::send_heartbeat(TimePoint now) {
  heartbeats_sent_->inc();
  const RegistryDigest digest = own_digest();
  if (cfg_.mode == CohesionConfig::Mode::hierarchical) {
    if (!parent_.valid()) return;
    ProtoMessage m = make("heartbeat");
    m.blob = digest.encode();
    m.set("names", join_names(aggregate_names()));
    send(parent_, m);
  } else if (cfg_.mode == CohesionConfig::Mode::flat_query) {
    for (NodeId n : roster_) send(n, make("alive"));
  } else {  // strong: periodic full digest broadcast doubles as keep-alive
    ProtoMessage m = make("digest_full");
    m.blob = digest.encode();
    for (NodeId n : roster_) send(n, m);
  }
  (void)now;
}

void CohesionNode::broadcast_update(TimePoint now) {
  if (cfg_.mode != CohesionConfig::Mode::strong) return;
  ProtoMessage m = make("digest_full");
  m.blob = own_digest().encode();
  for (NodeId n : roster_) send(n, m);
  (void)now;
}

// ---------------------------------------------------------------------------
// Queries

void CohesionNode::append_hits(std::vector<QueryHit>& into,
                               const std::vector<QueryHit>& from) {
  for (const auto& h : from) {
    const bool dup =
        std::any_of(into.begin(), into.end(), [&](const QueryHit& e) {
          return e.node == h.node && e.component == h.component &&
                 e.version == h.version;
        });
    if (!dup) into.push_back(h);
  }
}

void CohesionNode::local_and_cached_hits(const ComponentQuery& q,
                                         std::vector<QueryHit>& hits) const {
  append_hits(hits, digest_hits(q, own_digest()));
  for (const auto& [child, info] : children_) {
    if (info.suspect) continue;
    append_hits(hits, digest_hits(q, info.digest));
  }
}

bool CohesionNode::coverage_gap() const {
  if (root_ && !suspected_.empty()) return true;
  return std::any_of(children_.begin(), children_.end(),
                     [](const auto& kv) { return kv.second.suspect; });
}

void CohesionNode::finish_pending(std::uint64_t qid) {
  auto it = pending_.find(qid);
  if (it == pending_.end()) return;
  PendingQuery p = std::move(it->second);
  pending_.erase(it);
  PlacementContext ctx;
  ctx.querying_node = id_;
  ctx.group_mrm = parent_;
  for (const auto& [child, info] : children_) ctx.group_members.push_back(child);
  if (parent_.valid()) ctx.group_members.push_back(parent_);
  rank_hits(p.hits, ctx);
  if (p.hits.size() > p.q.max_results) p.hits.resize(p.q.max_results);
  queries_answered_->inc();
  if (p.degraded) {
    metrics_->counter("cohesion.degraded_queries").inc();
    note_transition("query_degraded");
  }
  QueryResult result;
  result.hits = std::move(p.hits);
  result.degraded = p.degraded;
  p.cb(std::move(result));
}

void CohesionNode::query(const ComponentQuery& q, TimePoint now,
                         QueryCallback cb) {
  query_ex(q, now, [cb = std::move(cb)](QueryResult r) {
    cb(std::move(r.hits));
  });
}

void CohesionNode::query_ex(const ComponentQuery& q, TimePoint now,
                            QueryCallbackEx cb) {
  queries_issued_->inc();
  const std::uint64_t qid = (id_.value << 20) | (next_qid_++ & 0xfffff);
  PendingQuery p;
  p.q = q;
  p.cb = std::move(cb);
  p.deadline = now + cfg_.query_timeout;

  if (cfg_.mode == CohesionConfig::Mode::strong) {
    append_hits(p.hits, digest_hits(q, own_digest()));
    for (const auto& [node, digest] : full_registry_) {
      if (node == id_) continue;
      append_hits(p.hits, digest_hits(q, digest));
    }
    pending_.emplace(qid, std::move(p));
    finish_pending(qid);
    return;
  }

  if (cfg_.mode == CohesionConfig::Mode::flat_query) {
    append_hits(p.hits, digest_hits(q, own_digest()));
    ProtoMessage m = make("q_flat");
    m.set_int("qid", static_cast<std::int64_t>(qid));
    m.blob = q.encode();
    for (NodeId n : roster_) {
      if (n == id_) continue;
      p.awaiting.insert(n);
      send(n, m);
    }
    const bool done = p.awaiting.empty();
    pending_.emplace(qid, std::move(p));
    if (done) finish_pending(qid);
    return;
  }

  // Hierarchical: check locally + one level down, then climb.
  local_and_cached_hits(q, p.hits);
  const bool satisfied = p.hits.size() >= q.max_results;
  // An orphan (parent unreachable, no verdict yet -- the degraded minority
  // side of a partition) serves what it can see and tags the result.
  if (!satisfied && joined_ && !root_ && !parent_.valid()) p.degraded = true;
  // Suspect subtrees (or, at the root, suspects awaiting a quorum verdict)
  // will not be asked: the query completes, but over partial coverage.
  if (!satisfied && coverage_gap()) p.degraded = true;
  const bool can_descend = std::any_of(
      children_.begin(), children_.end(), [&](const auto& kv) {
        return !kv.second.suspect && names_may_match(q, kv.second.subtree_names);
      });
  if (satisfied || (!parent_.valid() && !can_descend)) {
    pending_.emplace(qid, std::move(p));
    finish_pending(qid);
    return;
  }
  // Route through the tree: build a relay whose reply feeds our pending.
  RelayedQuery relay;
  relay.q = q;
  relay.reply_to = id_;  // reply lands in our own pending
  relay.reply_qid = qid;
  relay.deadline = now + cfg_.query_timeout;
  relay.came_from = id_;
  pending_.emplace(qid, std::move(p));
  process_tree_query(qid, std::move(relay), now);
}

void CohesionNode::process_tree_query(std::uint64_t qid, RelayedQuery&& relay,
                                      TimePoint now) {
  // Relays inherit the coverage gap too, so a leaf that queried through us
  // learns its answer skipped suspect subtrees.
  if (coverage_gap()) relay.degraded = true;
  // Descend into promising child subtrees (pruned by aggregate names).
  // The child's *own* components are already cached here, so descend only
  // when a deeper name (one the child aggregates but does not itself host)
  // could match the pattern.
  for (const auto& [child, info] : children_) {
    if (child == relay.came_from || info.suspect) continue;
    std::set<std::string> own_names;
    for (const auto& c : info.digest.components)
      own_names.insert(component_label(c));
    std::set<std::string> deeper;
    for (const auto& n : info.subtree_names) {
      if (own_names.count(n) == 0) deeper.insert(n);
    }
    if (!names_may_match(relay.q, deeper)) continue;
    ProtoMessage m = make("q_down");
    m.set_int("qid", static_cast<std::int64_t>(qid));
    m.blob = relay.q.encode();
    relay.awaiting_children.insert(child);
    send(child, m);
  }
  // Escalate one level if we still may need more results.
  if (parent_.valid() && !relay.escalated &&
      relay.hits.size() < relay.q.max_results &&
      relay.came_from != parent_) {
    ProtoMessage m = make("q_up");
    m.set_int("qid", static_cast<std::int64_t>(qid));
    m.blob = relay.q.encode();
    relay.awaiting_children.insert(parent_);
    relay.escalated = true;
    send(parent_, m);
  }
  if (relay.awaiting_children.empty()) {
    // Nothing to wait for: answer straight away.
    relayed_[qid] = std::move(relay);
    finish_relay(qid, now);
    return;
  }
  relayed_[qid] = std::move(relay);
  (void)now;
}

void CohesionNode::finish_relay(std::uint64_t qid, TimePoint now) {
  auto it = relayed_.find(qid);
  if (it == relayed_.end()) return;
  RelayedQuery relay = std::move(it->second);
  relayed_.erase(it);
  // A fragment root (orphaned: no parent, not the network root) answers
  // for its subtree only -- the rest of the tree is unreachable.
  if (joined_ && !root_ && !parent_.valid() &&
      relay.hits.size() < relay.q.max_results)
    relay.degraded = true;
  if (relay.reply_to == id_) {
    auto p = pending_.find(relay.reply_qid);
    if (p != pending_.end()) {
      append_hits(p->second.hits, relay.hits);
      p->second.degraded = p->second.degraded || relay.degraded;
      finish_pending(relay.reply_qid);
    }
    return;
  }
  ProtoMessage m = make("q_reply");
  m.set_int("qid", static_cast<std::int64_t>(relay.reply_qid));
  if (relay.degraded) m.set_int("deg", 1);
  m.blob = encode_hits(relay.hits);
  send(relay.reply_to, m);
  (void)now;
}

// ---------------------------------------------------------------------------
// Message handling

void CohesionNode::on_message(const ProtoMessage& m, TimePoint now) {
  const NodeId from = m.sender;
  // Incarnation fence: frames sent by a previous life of a crashed node
  // (or by a node we hold a tombstone for) die at the protocol boundary.
  if (!admit_message(m)) return;
  // Any admitted message is first-hand liveness: abort a pending verdict
  // against the sender (a healed partition revives suspects this way).
  if (suspected_.count(from) != 0) clear_suspicion(from);

  if (m.kind == "node_dead") {
    const NodeId dead{static_cast<std::uint64_t>(m.field_int("node"))};
    const auto dead_inc =
        static_cast<std::uint64_t>(m.field_int("dead_inc", 1));
    if (!dead.valid() || dead == id_) return;
    auto alive = Directory::decode(m.blob);
    note_death(dead, dead_inc,
               alive.ok() ? alive->join_order : std::vector<NodeId>{}, now,
               /*broadcast=*/false);
    return;
  }

  if (m.kind == "ae_sync") {
    merge_incarnation_table(m.blob, now);
    ProtoMessage reply = make("ae_reply");
    reply.blob = encode_incarnation_table(now);
    send(from, reply);
    return;
  }

  if (m.kind == "ae_reply") {
    merge_incarnation_table(m.blob, now);
    return;
  }

  if (m.kind == "join") {
    if (cfg_.mode != CohesionConfig::Mode::hierarchical) {
      // Flat/strong: whoever receives the join tells everyone.
      roster_.insert(id_);
      ProtoMessage roster = make("roster");
      {
        orb::CdrWriter w;
        w.begin_encapsulation();
        w.write_ulong(static_cast<std::uint32_t>(roster_.size() + 1));
        for (NodeId n : roster_) w.write_ulonglong(n.value);
        w.write_ulonglong(from.value);
        roster.blob = w.take();
      }
      ProtoMessage joined = make("node_joined");
      joined.set_int("node", static_cast<std::int64_t>(from.value));
      for (NodeId n : roster_) {
        if (n != id_ && n != from) send(n, joined);
      }
      roster_.insert(from);
      roster_last_heard_[from] = now;
      send(from, roster);
      return;
    }
    if (root_) {
      directory_.add(from);
      root_recompute_and_publish(now);
    } else if (parent_.valid()) {
      send(parent_, m);  // forward up toward the root
    } else if (current_root_.valid()) {
      send(current_root_, m);
    }
    return;
  }

  if (m.kind == "topology") {
    const auto their_ep = static_cast<std::uint64_t>(m.field_int("ep", 1));
    if (root_) {
      // A rival hierarchy is adopting us (it revived our entry after a
      // heal). Settle the contest instead of silently handing over the
      // role; if we lose, demote_from_root already joined the winner and
      // its next topology push reaches us as an ordinary member.
      contest_root(from, their_ep);
      return;
    }
    // Stale push from a root that already lost the tie-break.
    if (their_ep < epoch_) return;
    adopt_topology(NodeId{static_cast<std::uint64_t>(m.field_int("parent"))},
                   now);
    current_root_ = from;
    return;
  }

  if (m.kind == "heartbeat") {
    auto digest = RegistryDigest::decode(m.blob);
    ChildInfo& info = children_[from];
    info.last_heard = now;
    info.suspect = false;
    record_arrival(from, now);
    if (digest.ok()) {
      // Per-node digest version = (incarnation, revision): never let a
      // reordered older digest overwrite a newer cached one.
      const bool stale =
          info.have_digest &&
          (digest->incarnation < info.digest.incarnation ||
           (digest->incarnation == info.digest.incarnation &&
            digest->revision < info.digest.revision));
      if (stale) {
        metrics_->counter("cohesion.stale_digests_ignored").inc();
      } else {
        info.digest = std::move(*digest);
        info.have_digest = true;
      }
    }
    info.subtree_names = split_names(m.field("names"));
    return;
  }

  if (m.kind == "beacon") {
    const NodeId announced{static_cast<std::uint64_t>(m.field_int("root"))};
    const auto their_ep = static_cast<std::uint64_t>(m.field_int("ep", 1));
    if (root_ && announced.valid() && announced != id_) {
      // A beacon naming a different root reaches a root only when two
      // hierarchies survived a partition.
      contest_root(announced, their_ep);
      return;
    }
    if (their_ep < epoch_) return;  // losing root's tree, ignore
    if (from == parent_) {
      parent_last_heard_ = now;
      record_arrival(from, now);
    }
    current_root_ = announced;
    return;
  }

  if (m.kind == "member_dead") {
    const NodeId dead{static_cast<std::uint64_t>(m.field_int("node"))};
    if (root_ && directory_.contains(dead) && dead != id_) {
      // Never trust a death report blindly: the reporter may be a stale
      // parent whose child merely moved away (topology pushes are oneway
      // and can be lost). Probe the node directly -- and ask the rest of
      // the directory to probe it from their side -- then evict only on a
      // probe timeout *with* a majority of unreachability confirmations.
      root_begin_probe(dead, now);
    }
    return;
  }

  if (m.kind == "probe") {
    send(from, make("probe_ack"));
    return;
  }

  if (m.kind == "probe_req") {
    // The root asks us to check a suspect's reachability from our side.
    const NodeId target{static_cast<std::uint64_t>(m.field_int("node"))};
    if (!target.valid() || target == id_) return;
    if (indirect_probes_.count(target) == 0) {
      indirect_probes_[target] = {from, now};
      send(target, make("probe"));
    }
    return;
  }

  if (m.kind == "probe_vouch") {
    // A peer reached the suspect: it is partitioned from us, not dead.
    const NodeId target{static_cast<std::uint64_t>(m.field_int("node"))};
    if (root_ && probe_pending_.count(target) != 0) {
      clear_suspicion(target);
      note_transition("verdict_deferred:" + target.to_string());
    }
    return;
  }

  if (m.kind == "probe_unreach") {
    // A peer failed to reach the suspect: one confirmation toward quorum.
    const NodeId target{static_cast<std::uint64_t>(m.field_int("node"))};
    if (root_ && probe_pending_.count(target) != 0)
      probe_votes_[target].insert(from);
    return;
  }

  if (m.kind == "expect_child") {
    const NodeId child{static_cast<std::uint64_t>(m.field_int("node"))};
    if (child != id_ && child.valid()) {
      auto& info = children_[child];
      if (info.last_heard == 0) info.last_heard = now;  // grace period starts
    }
    return;
  }

  if (m.kind == "probe_ack") {
    probe_pending_.erase(from);
    probe_votes_.erase(from);
    // Indirect probe on behalf of a root: report the suspect reachable.
    if (auto it = indirect_probes_.find(from); it != indirect_probes_.end()) {
      ProtoMessage vouch = make("probe_vouch");
      vouch.set_int("node", static_cast<std::int64_t>(from.value));
      send(it->second.first, vouch);
      indirect_probes_.erase(it);
    }
    // Majority-gated promotion poll: count reachable directory members.
    if (root_death_detected_ != 0) promotion_acks_.insert(from);
    return;
  }

  if (m.kind == "dir_sync") {
    // Only non-roots mirror the directory, and never from a hierarchy that
    // already lost the tie-break: a root's own directory is authoritative,
    // and a stale ex-root's sync would re-root the published tree at it.
    if (root_ || static_cast<std::uint64_t>(m.field_int("ep", 1)) < epoch_)
      return;
    auto dir = Directory::decode(m.blob);
    if (dir.ok()) {
      directory_ = std::move(*dir);
      have_directory_copy_ = true;
      replica_rank_ = static_cast<int>(m.field_int("rank"));
    }
    return;
  }

  if (m.kind == "root_announce") {
    if (root_ && from != id_) {
      // Two roots are contesting the role; admit_message defers epoch
      // adoption for exactly this comparison.
      contest_root(from, static_cast<std::uint64_t>(m.field_int("ep", 1)));
      return;
    }
    // A member already following a higher epoch ignores announcements from
    // the losing root -- it will demote and rejoin on its own.
    if (static_cast<std::uint64_t>(m.field_int("ep", 1)) < epoch_) return;
    current_root_ = from;
    root_death_detected_ = 0;
    promotion_acks_.clear();
    // Orphans re-attach through the new root.
    if (!root_ && !parent_.valid()) send(from, make("join"));
    return;
  }

  if (m.kind == "roster") {
    orb::CdrReader r(m.blob);
    if (!r.begin_encapsulation().ok()) return;
    auto count = r.read_ulong();
    if (!count) return;
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto v = r.read_ulonglong();
      if (!v) return;
      roster_.insert(NodeId{*v});
      roster_last_heard_[NodeId{*v}] = now;
    }
    roster_.insert(id_);
    joined_ = true;
    return;
  }

  if (m.kind == "node_joined") {
    const NodeId n{static_cast<std::uint64_t>(m.field_int("node"))};
    roster_.insert(n);
    roster_last_heard_[n] = now;
    return;
  }

  if (m.kind == "alive") {
    roster_.insert(from);
    roster_last_heard_[from] = now;
    return;
  }

  if (m.kind == "digest_full") {
    auto digest = RegistryDigest::decode(m.blob);
    if (digest.ok()) {
      auto cached = full_registry_.find(from);
      const bool stale =
          cached != full_registry_.end() &&
          (digest->incarnation < cached->second.incarnation ||
           (digest->incarnation == cached->second.incarnation &&
            digest->revision < cached->second.revision));
      if (stale)
        metrics_->counter("cohesion.stale_digests_ignored").inc();
      else
        full_registry_[from] = std::move(*digest);
    }
    roster_.insert(from);
    roster_last_heard_[from] = now;
    record_arrival(from, now);
    return;
  }

  if (m.kind == "q_flat") {
    const auto qid = m.field_int("qid");
    auto q = ComponentQuery::decode(m.blob);
    ProtoMessage reply = make("q_hits");
    reply.set_int("qid", qid);
    reply.blob = q.ok() ? encode_hits(digest_hits(*q, own_digest()))
                        : encode_hits({});
    send(from, reply);
    return;
  }

  if (m.kind == "q_hits") {
    const auto qid = static_cast<std::uint64_t>(m.field_int("qid"));
    auto it = pending_.find(qid);
    if (it == pending_.end()) return;
    auto hits = decode_hits(m.blob);
    if (hits.ok()) append_hits(it->second.hits, *hits);
    it->second.awaiting.erase(from);
    if (it->second.awaiting.empty()) finish_pending(qid);
    return;
  }

  if (m.kind == "q_up" || m.kind == "q_down") {
    const auto qid = static_cast<std::uint64_t>(m.field_int("qid"));
    auto q = ComponentQuery::decode(m.blob);
    if (!q.ok()) return;
    if (relayed_.count(qid) != 0 || pending_.count(qid) != 0) return;  // loop guard
    RelayedQuery relay;
    relay.q = *q;
    relay.reply_to = from;
    relay.reply_qid = qid;
    relay.deadline = now + cfg_.query_timeout;
    relay.came_from = from;
    // A downward query must not bounce back up.
    relay.escalated = (m.kind == "q_down");
    local_and_cached_hits(relay.q, relay.hits);
    process_tree_query(qid, std::move(relay), now);
    return;
  }

  if (m.kind == "q_reply") {
    const auto qid = static_cast<std::uint64_t>(m.field_int("qid"));
    auto hits = decode_hits(m.blob);
    const bool deg = m.field_int("deg", 0) != 0;
    if (auto it = relayed_.find(qid); it != relayed_.end()) {
      if (hits.ok()) append_hits(it->second.hits, *hits);
      it->second.degraded = it->second.degraded || deg;
      it->second.awaiting_children.erase(from);
      if (it->second.awaiting_children.empty()) finish_relay(qid, now);
      return;
    }
    if (auto it = pending_.find(qid); it != pending_.end()) {
      if (hits.ok()) append_hits(it->second.hits, *hits);
      it->second.degraded = it->second.degraded || deg;
      finish_pending(qid);
    }
    return;
  }
}

// ---------------------------------------------------------------------------
// Timers

void CohesionNode::on_tick(TimePoint now) {
  const Duration t = cfg_.heartbeat;

  // Join retry.
  if (!joined_ && bootstrap_.valid() && now - join_started_ > 5 * t) {
    join_started_ = now;
    send(bootstrap_, make("join"));
  }
  if (!joined_) return;

  // Heartbeats.
  if (now - last_heartbeat_ >= t) {
    last_heartbeat_ = now;
    send_heartbeat(now);
  }

  if (cfg_.mode == CohesionConfig::Mode::hierarchical) {
    // Beacons to children (+ directory sync handled on recompute; refresh
    // replicas periodically too, piggybacked here).
    if (now - last_beacon_ >= t) {
      last_beacon_ = now;
      ProtoMessage beacon = make("beacon");
      beacon.set_int("root", static_cast<std::int64_t>(current_root_.value));
      std::vector<NodeId> child_ids;
      child_ids.reserve(children_.size());
      for (const auto& [child, info] : children_) child_ids.push_back(child);
      for (NodeId child : child_ids) send(child, beacon);
      beacons_sent_->inc();
      if (root_) {
        // Control messages (topology, expect_child, dir_sync) are oneway
        // and can be lost; a periodic full re-publication self-heals any
        // divergence at ~0.1 message/node/heartbeat amortized cost.
        if (++republish_countdown_ >= 10) {
          republish_countdown_ = 0;
          last_published_.clear();
          root_recompute_and_publish(now);
        }
        const auto replicas = root_replica_list();
        for (std::size_t i = 0; i < replicas.size(); ++i) {
          ProtoMessage m = make("dir_sync");
          m.set_int("rank", static_cast<std::int64_t>(i));
          m.blob = directory_.encode();
          send(replicas[i], m);
        }
        // A root that cannot integrate part of its directory keeps
        // announcing itself toward the unreachable members: after a heal
        // this is how two surviving roots discover each other and settle
        // the split-brain tie-break. Delivery is synchronous and the reply
        // chain can demote us (clearing suspected_), so iterate a copy and
        // stop announcing the moment we lose the role.
        const std::vector<NodeId> contested(suspected_.begin(),
                                            suspected_.end());
        for (NodeId n : contested) {
          if (!root_) break;
          send(n, make("root_announce"));
        }
      }
    }

    // Child failure detection (suspect, then dead). Phi can only pull
    // these verdicts *earlier* than the fixed bounds — `suspect_after` /
    // `dead_after` remain hard ceilings, so a jittery network is never
    // detected later than the classic protocol would.
    std::vector<NodeId> dead_children;
    for (auto& [child, info] : children_) {
      const Duration silence = now - info.last_heard;
      if (silence > cfg_.dead_after * t || phi_says_dead(child, silence)) {
        dead_children.push_back(child);
      } else if (silence > cfg_.suspect_after * t ||
                 phi_says_suspect(child, silence)) {
        if (!info.suspect && silence <= cfg_.suspect_after * t)
          phi_suspects_->inc();  // phi beat the fixed bound to it
        info.suspect = true;
      }
    }
    for (NodeId dead : dead_children) {
      children_.erase(dead);
      if (root_) {
        // Probe before eviction, as in the member_dead handler.
        if (directory_.contains(dead)) root_begin_probe(dead, now);
      } else if (current_root_.valid()) {
        ProtoMessage m = make("member_dead");
        m.set_int("node", static_cast<std::int64_t>(dead.value));
        send(current_root_, m);
      }
    }

    // Parent failure detection (same phi acceleration, same fixed ceiling).
    if (!root_ && parent_.valid() && parent_last_heard_ > 0 &&
        (now - parent_last_heard_ > cfg_.dead_after * t ||
         phi_says_dead(parent_, now - parent_last_heard_))) {
      const NodeId dead_parent = parent_;
      parent_ = NodeId{};
      if (dead_parent == current_root_) {
        // Root died. Replicas promote (staggered by rank); everyone else
        // waits for the announcement.
        if (have_directory_copy_ && root_death_detected_ == 0)
          root_death_detected_ = now;
      } else if (current_root_.valid()) {
        ProtoMessage m = make("member_dead");
        m.set_int("node", static_cast<std::int64_t>(dead_parent.value));
        send(current_root_, m);
        // Re-join through the root so we get re-adopted even if the root's
        // directory dropped us meanwhile (e.g. after a healed partition).
        send(current_root_, make("join"));
      }
    }

    // Probe timeouts: a suspect whose direct probes *and* a majority of
    // indirect confirmations all failed is evicted. Without quorum the
    // verdict is deferred -- the node stays `suspected` (it may be on the
    // far side of a partition) and the probe round restarts, so a later
    // heal revives it and a later quorum still evicts it. Probes are
    // repeated every tick while pending, so a single lost probe (or ack)
    // cannot evict a live node.
    if (root_) {
      // Snapshot before sending: a probed node that healed answers its
      // probe_ack *synchronously*, and the ack handler erases it from
      // probe_pending_ -- mutating the map under a live iterator.
      std::vector<NodeId> expired;
      std::vector<NodeId> reprobe;
      for (const auto& [node, asked_at] : probe_pending_) {
        if (now - asked_at > cfg_.dead_after * t) {
          expired.push_back(node);
        } else {
          reprobe.push_back(node);
        }
      }
      for (NodeId node : reprobe) send(node, make("probe"));
      for (NodeId node : expired) {
        // The ack chain above may have resolved this suspect already.
        if (probe_pending_.count(node) == 0) continue;
        const std::size_t confirmations = 1 + probe_votes_[node].size();
        if (confirmations >= quorum_needed()) {
          probe_pending_.erase(node);
          probe_votes_.erase(node);
          handle_member_dead(node, now);
        } else {
          note_transition("verdict_deferred:" + node.to_string());
          metrics_->counter("cohesion.verdicts_deferred").inc();
          probe_pending_[node] = now;  // new round, fresh votes
          probe_votes_[node].clear();
          send(node, make("probe"));
          ProtoMessage req = make("probe_req");
          req.set_int("node", static_cast<std::int64_t>(node.value));
          const std::vector<NodeId> members = directory_.join_order;
          for (NodeId n : members) {
            if (n == id_ || n == node || suspected_.count(n) != 0) continue;
            send(n, req);
          }
        }
      }
    }

    // Peer side of indirect probes: report unreachable after the suspect
    // timeout, keep re-probing while the window is open. Snapshot first --
    // a healed target acks synchronously and the handler erases its entry.
    std::vector<std::pair<NodeId, NodeId>> unreached;  // (target, root)
    std::vector<NodeId> still_probing;
    for (const auto& [target, req] : indirect_probes_) {
      if (now - req.second > cfg_.suspect_after * t) {
        unreached.emplace_back(target, req.first);
      } else {
        still_probing.push_back(target);
      }
    }
    for (NodeId target : still_probing) send(target, make("probe"));
    for (const auto& [target, root] : unreached) {
      if (indirect_probes_.erase(target) == 0) continue;  // acked meanwhile
      ProtoMessage verdict = make("probe_unreach");
      verdict.set_int("node", static_cast<std::int64_t>(target.value));
      send(root, verdict);
    }

    // Staggered replica promotion after root death -- gated on reaching a
    // majority of the directory, so a minority-side replica never claims
    // the root role (it polls until a heal lets it, by which time the
    // majority root's higher epoch wins the announce tie-break anyway).
    if (root_death_detected_ != 0 && !root_ &&
        now - root_death_detected_ >
            static_cast<Duration>(replica_rank_) * 2 * t) {
      const std::size_t n = directory_.join_order.size();
      if (n <= 2 || 1 + promotion_acks_.size() >= n / 2 + 1) {
        promote_to_root(now);
      } else if (now - promotion_poll_last_ >= t) {
        promotion_poll_last_ = now;
        const std::vector<NodeId> members = directory_.join_order;
        for (NodeId peer : members) {
          if (peer == id_ || peer == current_root_) continue;
          send(peer, make("probe"));
        }
      }
    }

    // Orphaned member (parent unreachable, no replacement yet): keep
    // knocking on the last known root so the hierarchy merges back the
    // moment a heal lets the join through.
    if (joined_ && !root_ && !parent_.valid() && current_root_.valid() &&
        root_death_detected_ == 0 && now - last_rejoin_attempt_ >= 2 * t) {
      last_rejoin_attempt_ = now;
      send(current_root_, make("join"));
    }
  } else {
    // Flat/strong: prune silent roster entries. Each node reaches the
    // verdict on its own (no MRM to confirm), so the tombstone + dead
    // handler fire locally; anti-entropy spreads the verdict.
    std::vector<NodeId> gone;
    for (const auto& [n, heard] : roster_last_heard_) {
      if (n != id_ && (now - heard > cfg_.dead_after * t ||
                       phi_says_dead(n, now - heard)))
        gone.push_back(n);
    }
    for (NodeId n : gone) {
      roster_.erase(n);
      roster_last_heard_.erase(n);
      full_registry_.erase(n);
      note_death(n, known_incarnation(n) == 0 ? 1 : known_incarnation(n),
                 std::vector<NodeId>(roster_.begin(), roster_.end()), now,
                 /*broadcast=*/false);
    }
  }

  // Anti-entropy: periodic incarnation-table exchange with one peer.
  if (cfg_.anti_entropy_every > 0 &&
      now - last_anti_entropy_ >= cfg_.anti_entropy_every * t) {
    last_anti_entropy_ = now;
    send_anti_entropy(now);
  }

  // Query deadlines: flush what we have. A flush with peers still owing
  // answers means partial coverage -- the result is tagged degraded.
  std::vector<std::uint64_t> late_relays;
  for (auto& [qid, relay] : relayed_) {
    if (now >= relay.deadline) {
      relay.degraded = relay.degraded || !relay.awaiting_children.empty();
      late_relays.push_back(qid);
    }
  }
  for (auto qid : late_relays) finish_relay(qid, now);
  std::vector<std::uint64_t> late_pending;
  for (auto& [qid, p] : pending_) {
    if (now >= p.deadline) {
      p.degraded = p.degraded || !p.awaiting.empty();
      late_pending.push_back(qid);
    }
  }
  for (auto qid : late_pending) finish_pending(qid);
}

// ---------------------------------------------------------------------------
// Introspection

std::vector<NodeId> CohesionNode::children() const {
  std::vector<NodeId> out;
  out.reserve(children_.size());
  for (const auto& [child, info] : children_) out.push_back(child);
  return out;
}

std::vector<NodeId> CohesionNode::directory_nodes() const {
  return directory_.join_order;
}

std::vector<NodeId> CohesionNode::known_nodes() const {
  if (cfg_.mode != CohesionConfig::Mode::hierarchical)
    return std::vector<NodeId>(roster_.begin(), roster_.end());
  if (root_) return directory_.join_order;
  std::vector<NodeId> out;
  if (parent_.valid()) out.push_back(parent_);
  for (const auto& [child, info] : children_) out.push_back(child);
  return out;
}

int CohesionNode::subtree_depth() const {
  if (root_) {
    // Depth of the computed tree: longest parent chain + 1.
    const auto tree = compute_tree();
    int max_depth = 1;
    for (NodeId n : directory_.join_order) {
      int depth = 1;
      NodeId cur = n;
      while (true) {
        auto it = tree.find(cur);
        if (it == tree.end()) break;
        cur = it->second;
        ++depth;
      }
      max_depth = std::max(max_depth, depth);
    }
    return max_depth;
  }
  return children_.empty() ? 1 : 2;
}

}  // namespace clc::core
