// Aggregation: data-parallel components (§2.1.1, [17]).
//
// "Aggregation: if this component knows how to split itself in different
// instances to process a set of data (data-parallel components) and how to
// gather partial results into a complete solution." The coordinator splits
// the aggregator instance's pending work into chunks, farms each chunk to a
// volunteer node (which instantiates the same component and runs
// process_chunk), and gathers the partials. A failed volunteer's chunk is
// re-run locally -- the volunteer-computing fault model of §3.2.
#pragma once

#include <vector>

#include "core/node.hpp"

namespace clc::core {

struct AggregationReport {
  Bytes result;
  std::size_t chunks = 0;
  std::size_t remote_chunks = 0;   // chunks executed by volunteers
  std::size_t recovered_chunks = 0;  // volunteer failed; re-run locally
};

/// Run the aggregatable instance's pending work across `volunteers`
/// (round-robin). Empty volunteer list = purely local execution.
Result<AggregationReport> run_data_parallel(
    Node& origin, InstanceId aggregator, std::size_t parts,
    const std::vector<NodeId>& volunteers);

}  // namespace clc::core
