#include "core/failover.hpp"

#include "orb/cdr.hpp"

namespace clc::core {

Bytes CheckpointRecord::encode() const {
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_ulonglong(origin.value);
  w.write_ulonglong(origin_incarnation);
  w.write_ulonglong(instance.value);
  w.write_string(component);
  w.write_ulong(version.major);
  w.write_ulong(version.minor);
  w.write_ulong(version.patch);
  w.write_ulonglong(seq);
  w.write_ulonglong(epoch);
  w.write_bytes(state);
  w.write_ulong(static_cast<std::uint32_t>(connections.size()));
  for (const auto& [port, ref] : connections) {
    w.write_string(port);
    ref.marshal(w);
  }
  w.write_ulong(static_cast<std::uint32_t>(holders.size()));
  for (NodeId h : holders) w.write_ulonglong(h.value);
  w.write_bytes(package);
  return w.take();
}

Result<CheckpointRecord> CheckpointRecord::decode(BytesView data) {
  orb::CdrReader r(data);
  if (auto enc = r.begin_encapsulation(); !enc.ok()) return enc.error();
  CheckpointRecord rec;
  auto origin = r.read_ulonglong();
  if (!origin) return origin.error();
  rec.origin = NodeId{*origin};
  auto inc = r.read_ulonglong();
  if (!inc) return inc.error();
  rec.origin_incarnation = *inc;
  auto instance = r.read_ulonglong();
  if (!instance) return instance.error();
  rec.instance = InstanceId{*instance};
  auto component = r.read_string();
  if (!component) return component.error();
  rec.component = std::move(*component);
  auto maj = r.read_ulong();
  if (!maj) return maj.error();
  auto min = r.read_ulong();
  if (!min) return min.error();
  auto pat = r.read_ulong();
  if (!pat) return pat.error();
  rec.version = Version{*maj, *min, *pat};
  auto seq = r.read_ulonglong();
  if (!seq) return seq.error();
  rec.seq = *seq;
  auto epoch = r.read_ulonglong();
  if (!epoch) return epoch.error();
  rec.epoch = *epoch;
  auto state = r.read_bytes();
  if (!state) return state.error();
  rec.state = std::move(*state);
  auto conn_count = r.read_ulong();
  if (!conn_count) return conn_count.error();
  if (*conn_count > r.remaining())
    return Error{Errc::corrupt_data, "checkpoint connection count exceeds payload"};
  for (std::uint32_t i = 0; i < *conn_count; ++i) {
    auto port = r.read_string();
    if (!port) return port.error();
    auto ref = orb::ObjectRef::unmarshal(r);
    if (!ref) return ref.error();
    rec.connections.emplace(std::move(*port), std::move(*ref));
  }
  auto holder_count = r.read_ulong();
  if (!holder_count) return holder_count.error();
  if (*holder_count > r.remaining())
    return Error{Errc::corrupt_data, "checkpoint holder count exceeds payload"};
  for (std::uint32_t i = 0; i < *holder_count; ++i) {
    auto h = r.read_ulonglong();
    if (!h) return h.error();
    rec.holders.push_back(NodeId{*h});
  }
  auto package = r.read_bytes();
  if (!package) return package.error();
  rec.package = std::move(*package);
  return rec;
}

bool CheckpointStore::store(CheckpointRecord rec) {
  const Key key{rec.origin.value, rec.instance.value};
  auto it = records_.find(key);
  if (it != records_.end()) {
    const CheckpointRecord& old = it->second;
    const bool stale =
        rec.origin_incarnation < old.origin_incarnation ||
        (rec.origin_incarnation == old.origin_incarnation &&
         rec.seq <= old.seq);
    if (stale) return false;
    if (rec.package.empty()) rec.package = old.package;
  }
  records_[key] = std::move(rec);
  return true;
}

std::vector<const CheckpointRecord*> CheckpointStore::records_for(
    NodeId origin) const {
  std::vector<const CheckpointRecord*> out;
  for (const auto& [key, rec] : records_) {
    if (key.first == origin.value) out.push_back(&rec);
  }
  return out;
}

void CheckpointStore::purge_origin_below(NodeId origin,
                                         std::uint64_t incarnation) {
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->first.first == origin.value &&
        it->second.origin_incarnation < incarnation) {
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace clc::core
