#include "core/query.hpp"

#include <algorithm>

#include "orb/cdr.hpp"
#include "util/strings.hpp"

namespace clc::core {

Bytes RegistryDigest::encode() const {
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_ulonglong(node.value);
  w.write_double(cpu_load);
  w.write_ulonglong(memory_free_kb);
  w.write_octet(static_cast<std::uint8_t>(device));
  w.write_ulonglong(revision);
  w.write_ulonglong(incarnation);
  w.write_ulong(static_cast<std::uint32_t>(components.size()));
  for (const auto& c : components) {
    w.write_string(c.name);
    w.write_ulong(c.version.major);
    w.write_ulong(c.version.minor);
    w.write_ulong(c.version.patch);
    w.write_boolean(c.mobile);
    w.write_double(c.cost_per_use);
  }
  return w.take();
}

Result<RegistryDigest> RegistryDigest::decode(BytesView data) {
  orb::CdrReader r(data);
  if (auto enc = r.begin_encapsulation(); !enc.ok()) return enc.error();
  RegistryDigest d;
  auto node = r.read_ulonglong();
  if (!node) return node.error();
  d.node = NodeId{*node};
  auto cpu = r.read_double();
  if (!cpu) return cpu.error();
  d.cpu_load = *cpu;
  auto mem = r.read_ulonglong();
  if (!mem) return mem.error();
  d.memory_free_kb = *mem;
  auto dev = r.read_octet();
  if (!dev) return dev.error();
  if (*dev > static_cast<std::uint8_t>(DeviceClass::pda))
    return Error{Errc::corrupt_data, "bad device class"};
  d.device = static_cast<DeviceClass>(*dev);
  auto rev = r.read_ulonglong();
  if (!rev) return rev.error();
  d.revision = *rev;
  auto inc = r.read_ulonglong();
  if (!inc) return inc.error();
  d.incarnation = *inc;
  auto count = r.read_ulong();
  if (!count) return count.error();
  if (*count > r.remaining())
    return Error{Errc::corrupt_data, "digest component count exceeds payload"};
  d.components.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    ComponentSummary c;
    auto name = r.read_string();
    if (!name) return name.error();
    c.name = std::move(*name);
    auto maj = r.read_ulong();
    if (!maj) return maj.error();
    auto min = r.read_ulong();
    if (!min) return min.error();
    auto pat = r.read_ulong();
    if (!pat) return pat.error();
    c.version = Version{*maj, *min, *pat};
    auto mobile = r.read_boolean();
    if (!mobile) return mobile.error();
    c.mobile = *mobile;
    auto cost = r.read_double();
    if (!cost) return cost.error();
    c.cost_per_use = *cost;
    d.components.push_back(std::move(c));
  }
  return d;
}

std::string component_label(const ComponentSummary& c) {
  return c.name + "@" + c.version.to_string();
}

std::pair<std::string, Version> split_label(const std::string& label) {
  const auto at = label.rfind('@');
  if (at == std::string::npos) return {label, Version{}};
  auto v = Version::parse(label.substr(at + 1));
  if (!v.ok()) return {label, Version{}};
  return {label.substr(0, at), *v};
}

bool ComponentQuery::matches(const ComponentSummary& s) const {
  if (!glob_match(name_pattern, s.name)) return false;
  if (!constraint.matches(s.version)) return false;
  if (require_mobile && !s.mobile) return false;
  return true;
}

bool ComponentQuery::shardable() const noexcept {
  return !name_pattern.empty() &&
         name_pattern.find_first_of("*?") == std::string::npos;
}

Bytes ComponentQuery::encode() const {
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_string(name_pattern);
  w.write_string(constraint.to_string());
  w.write_boolean(require_mobile);
  w.write_ulong(max_results);
  return w.take();
}

Result<ComponentQuery> ComponentQuery::decode(BytesView data) {
  orb::CdrReader r(data);
  if (auto enc = r.begin_encapsulation(); !enc.ok()) return enc.error();
  ComponentQuery q;
  auto pattern = r.read_string();
  if (!pattern) return pattern.error();
  q.name_pattern = std::move(*pattern);
  auto ctext = r.read_string();
  if (!ctext) return ctext.error();
  auto c = VersionConstraint::parse(*ctext);
  if (!c) return c.error();
  q.constraint = *c;
  auto mobile = r.read_boolean();
  if (!mobile) return mobile.error();
  q.require_mobile = *mobile;
  auto max = r.read_ulong();
  if (!max) return max.error();
  q.max_results = *max;
  return q;
}

double score_hit(const QueryHit& hit, const PlacementContext& ctx) {
  double score = 0.0;
  // Location: the paper's example -- a local MPEG decoder "would work much
  // faster"; locality dominates.
  if (hit.node == ctx.querying_node) {
    score += 100.0;
  } else if (std::find(ctx.group_members.begin(), ctx.group_members.end(),
                       hit.node) != ctx.group_members.end()) {
    score += 50.0;
  }
  // Load: a lightly loaded host serves remote use / exports faster.
  score += (1.0 - std::min(hit.node_cpu_load, 1.0)) * 20.0;
  // Cost: pay-per-use components are penalized proportionally.
  score -= hit.cost_per_use * 10.0;
  // Mobility: fetchable components allow local installation later.
  if (hit.mobile) score += 5.0;
  // Device: prefer servers over workstations over PDAs as remote hosts.
  switch (hit.node_device) {
    case DeviceClass::server: score += 8.0; break;
    case DeviceClass::workstation: score += 4.0; break;
    case DeviceClass::pda: break;
  }
  // Version recency as a small tie-break.
  score += hit.version.major * 0.3 + hit.version.minor * 0.03 +
           hit.version.patch * 0.003;
  return score;
}

void rank_hits(std::vector<QueryHit>& hits, const PlacementContext& ctx) {
  std::stable_sort(hits.begin(), hits.end(),
                   [&](const QueryHit& a, const QueryHit& b) {
                     const double sa = score_hit(a, ctx);
                     const double sb = score_hit(b, ctx);
                     if (sa != sb) return sa > sb;
                     return a.node < b.node;
                   });
}

Bytes encode_hits(const std::vector<QueryHit>& hits) {
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_ulong(static_cast<std::uint32_t>(hits.size()));
  for (const auto& h : hits) {
    w.write_ulonglong(h.node.value);
    w.write_string(h.component);
    w.write_ulong(h.version.major);
    w.write_ulong(h.version.minor);
    w.write_ulong(h.version.patch);
    w.write_boolean(h.mobile);
    w.write_double(h.cost_per_use);
    w.write_double(h.node_cpu_load);
    w.write_octet(static_cast<std::uint8_t>(h.node_device));
  }
  return w.take();
}

Result<std::vector<QueryHit>> decode_hits(BytesView data) {
  orb::CdrReader r(data);
  if (auto enc = r.begin_encapsulation(); !enc.ok()) return enc.error();
  auto count = r.read_ulong();
  if (!count) return count.error();
  if (*count > r.remaining())
    return Error{Errc::corrupt_data, "hit count exceeds payload"};
  std::vector<QueryHit> hits;
  hits.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    QueryHit h;
    auto node = r.read_ulonglong();
    if (!node) return node.error();
    h.node = NodeId{*node};
    auto name = r.read_string();
    if (!name) return name.error();
    h.component = std::move(*name);
    auto maj = r.read_ulong();
    if (!maj) return maj.error();
    auto min = r.read_ulong();
    if (!min) return min.error();
    auto pat = r.read_ulong();
    if (!pat) return pat.error();
    h.version = Version{*maj, *min, *pat};
    auto mobile = r.read_boolean();
    if (!mobile) return mobile.error();
    h.mobile = *mobile;
    auto cost = r.read_double();
    if (!cost) return cost.error();
    h.cost_per_use = *cost;
    auto load = r.read_double();
    if (!load) return load.error();
    h.node_cpu_load = *load;
    auto dev = r.read_octet();
    if (!dev) return dev.error();
    if (*dev > static_cast<std::uint8_t>(DeviceClass::pda))
      return Error{Errc::corrupt_data, "bad device class in hit"};
    h.node_device = static_cast<DeviceClass>(*dev);
    hits.push_back(std::move(h));
  }
  return hits;
}

}  // namespace clc::core
