#include "core/shard.hpp"

namespace clc::core {

namespace {

/// splitmix64: mixes (holder, vnode index) into well-spread ring points.
/// Pure arithmetic, so every node derives the identical ring from the same
/// holder set.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t shard_hash(std::string_view key) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

void ShardMap::add_holder(std::uint32_t holder) {
  if (holder == 0 || !holders_.insert(holder).second) return;
  for (int i = 0; i < vnodes_; ++i) {
    std::uint64_t point =
        mix64((static_cast<std::uint64_t>(holder) << 20) | static_cast<std::uint64_t>(i));
    // On a (vanishingly rare) point collision the lower holder id wins on
    // both sides of the wire; skipping keeps the ring deterministic.
    auto [it, inserted] = ring_.emplace(point, holder);
    if (!inserted && holder < it->second) it->second = holder;
  }
}

void ShardMap::remove_holder(std::uint32_t holder) {
  if (holders_.erase(holder) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == holder)
      it = ring_.erase(it);
    else
      ++it;
  }
}

std::uint32_t ShardMap::owner_of(std::string_view key) const {
  if (ring_.empty()) return 0;
  auto it = ring_.lower_bound(shard_hash(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return it->second;
}

}  // namespace clc::core
