// FaultyTransport: a Transport decorator driven by a FaultInjector.
//
// Wraps any real transport (loopback or TCP) and subjects every message --
// request and reply are separate messages, mirroring the two network
// crossings of a roundtrip -- to the armed fault plan: drops surface as
// Errc::timeout (the caller cannot tell a lost request from a lost reply),
// resets as Errc::unreachable, corruption flips frame bytes before the
// inner transport sees them, duplication replays the request against the
// server a second time (exercising server idempotency), and delays run
// through an injectable sleep function so simulated time stays virtual.
//
// With no plan armed the decorator is a single relaxed atomic load plus a
// virtual call -- cheap enough to leave in place permanently.
#pragma once

#include <functional>
#include <memory>

#include "fault/plan.hpp"
#include "orb/transport.hpp"

namespace clc::fault {

class FaultyTransport final : public orb::Transport {
 public:
  FaultyTransport(std::shared_ptr<orb::Transport> inner,
                  obs::MetricsRegistry* metrics = nullptr)
      : inner_(std::move(inner)), injector_(metrics) {}

  [[nodiscard]] FaultInjector& injector() noexcept { return injector_; }
  [[nodiscard]] orb::Transport& inner() noexcept { return *inner_; }

  /// How injected delays pass; defaults to a real sleep. LocalNetwork
  /// substitutes a virtual-clock advance to keep tests deterministic.
  void set_sleep_fn(std::function<void(Duration)> fn) {
    sleep_fn_ = std::move(fn);
  }

  Result<Bytes> roundtrip(const std::string& endpoint,
                          BytesView frame) override;
  Result<void> send_oneway(const std::string& endpoint,
                           BytesView frame) override;
  /// Async path: request-direction faults apply before the inner submit
  /// (inline, on the caller thread -- deterministic under seeded plans),
  /// reply-direction faults inside the completion callback.
  void submit(const std::string& endpoint, BytesView frame,
              orb::ReplyCallback cb) override;

 private:
  void sleep(Duration d);
  /// Apply one message's decision to an outgoing frame. Returns the frame
  /// to transmit (corrupted copy when corruption applies) or an error for
  /// drop/reset; fills `duplicate`.
  Result<Bytes> apply(BytesView frame, bool request_direction,
                      bool* duplicate);

  std::shared_ptr<orb::Transport> inner_;
  FaultInjector injector_;
  std::function<void(Duration)> sleep_fn_;
};

}  // namespace clc::fault
