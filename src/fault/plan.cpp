#include "fault/plan.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace clc::fault {

const char* fault_kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::drop: return "drop";
    case FaultKind::duplicate: return "duplicate";
    case FaultKind::delay: return "delay";
    case FaultKind::reorder: return "reorder";
    case FaultKind::corrupt: return "corrupt";
    case FaultKind::reset: return "reset";
  }
  return "unknown";
}

FaultDecision FaultPlan::decide(std::uint64_t seq,
                                std::size_t frame_size) const {
  FaultDecision d;
  // Decisions must not depend on call interleaving, so each message gets a
  // private generator keyed by (seed, seq); draws happen in a fixed order.
  Rng rng(seed ^ (seq * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  if (reset_probability > 0 && rng.chance(reset_probability)) {
    d.reset = true;
    return d;
  }
  if (drop_probability > 0 && rng.chance(drop_probability)) {
    d.drop = true;
    return d;
  }
  if (duplicate_probability > 0 && rng.chance(duplicate_probability))
    d.duplicate = true;
  if (delay_probability > 0 && rng.chance(delay_probability))
    d.delay += rng.next_in(delay_min, delay_max < delay_min ? delay_min
                                                           : delay_max);
  if (reorder_jitter > 0)
    d.delay += static_cast<Duration>(
        rng.next_below(static_cast<std::uint64_t>(reorder_jitter) + 1));
  if (corrupt_probability > 0 && frame_size > 0 &&
      rng.chance(corrupt_probability)) {
    const auto n = 1 + rng.next_below(static_cast<std::uint64_t>(
                           corrupt_max_bytes < 1 ? 1 : corrupt_max_bytes));
    d.corrupt_offsets.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
      d.corrupt_offsets.push_back(
          static_cast<std::uint32_t>(rng.next_below(frame_size)));
  }
  return d;
}

CrashSchedule CrashSchedule::random(std::uint64_t seed,
                                    const std::vector<NodeId>& nodes,
                                    std::size_t count, Duration horizon,
                                    Duration min_downtime,
                                    Duration max_downtime) {
  CrashSchedule schedule;
  if (nodes.empty() || count == 0 || horizon <= 0) return schedule;
  Rng rng(seed ^ 0xC7A5C7A5C7A5C7A5ULL);
  // Deterministic victim pick without replacement (partial Fisher-Yates).
  std::vector<NodeId> pool = nodes;
  const std::size_t n = count < pool.size() ? count : pool.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(pool.size() - i));
    std::swap(pool[i], pool[j]);
    CrashEvent ev;
    ev.node = pool[i];
    ev.at = static_cast<TimePoint>(
        rng.next_below(static_cast<std::uint64_t>(horizon)));
    if (max_downtime > 0) {
      const Duration lo = min_downtime < 0 ? 0 : min_downtime;
      const Duration hi = max_downtime < lo ? lo : max_downtime;
      ev.restart_after = lo + static_cast<Duration>(rng.next_below(
                                  static_cast<std::uint64_t>(hi - lo) + 1));
    }
    schedule.events.push_back(ev);
  }
  std::sort(schedule.events.begin(), schedule.events.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.at != b.at ? a.at < b.at : a.node.value < b.node.value;
            });
  return schedule;
}

PartitionEvent PartitionSchedule::split(TimePoint at, Duration heal_after,
                                        const std::vector<NodeId>& side_a,
                                        const std::vector<NodeId>& side_b) {
  PartitionEvent ev;
  ev.at = at;
  ev.heal_after = heal_after;
  ev.cuts.reserve(side_a.size() * side_b.size() * 2);
  for (NodeId a : side_a)
    for (NodeId b : side_b) {
      ev.cuts.push_back({a, b});
      ev.cuts.push_back({b, a});
    }
  std::sort(ev.cuts.begin(), ev.cuts.end());
  return ev;
}

PartitionSchedule PartitionSchedule::random(std::uint64_t seed,
                                            const std::vector<NodeId>& nodes,
                                            std::size_t count, Duration horizon,
                                            Duration min_duration,
                                            Duration max_duration,
                                            double asymmetric_probability) {
  PartitionSchedule schedule;
  if (nodes.size() < 2 || count == 0 || horizon <= 0) return schedule;
  Rng rng(seed ^ 0x9A27717109A27717ULL);
  for (std::size_t e = 0; e < count; ++e) {
    // Shuffle a working copy and take a non-trivial prefix as the cut-off
    // side; drawing in a fixed order keeps the schedule a pure function of
    // the seed.
    std::vector<NodeId> pool = nodes;
    for (std::size_t i = 0; i + 1 < pool.size(); ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.next_below(pool.size() - i));
      std::swap(pool[i], pool[j]);
    }
    const std::size_t cut =
        1 + static_cast<std::size_t>(rng.next_below(pool.size() - 1));
    const std::vector<NodeId> side_a(pool.begin(), pool.begin() + cut);
    const std::vector<NodeId> side_b(pool.begin() + cut, pool.end());
    const auto at = static_cast<TimePoint>(
        rng.next_below(static_cast<std::uint64_t>(horizon)));
    Duration heal_after = 0;
    if (max_duration > 0) {
      const Duration lo = min_duration < 0 ? 0 : min_duration;
      const Duration hi = max_duration < lo ? lo : max_duration;
      heal_after = lo + static_cast<Duration>(rng.next_below(
                            static_cast<std::uint64_t>(hi - lo) + 1));
    }
    const bool asymmetric =
        asymmetric_probability > 0 && rng.chance(asymmetric_probability);
    PartitionEvent ev = split(at, heal_after, side_a, side_b);
    if (asymmetric) {
      // Keep only the side_a→side_b direction: the cut-off prefix goes
      // deaf-mute outbound but still receives.
      std::erase_if(ev.cuts, [&](const LinkCut& c) {
        return std::find(side_a.begin(), side_a.end(), c.to) != side_a.end();
      });
    }
    schedule.events.push_back(std::move(ev));
  }
  // stable_sort: same-instant episodes keep their draw order, so the
  // timetable stays a pure function of the seed.
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const PartitionEvent& a, const PartitionEvent& b) {
                     return a.at < b.at;
                   });
  return schedule;
}

GraySchedule GraySchedule::random(std::uint64_t seed,
                                  const std::vector<NodeId>& nodes,
                                  std::size_t count, Duration horizon,
                                  Duration min_duration, Duration max_duration,
                                  double min_factor, double max_factor,
                                  double stall_probability) {
  GraySchedule schedule;
  if (nodes.empty() || count == 0 || horizon <= 0) return schedule;
  Rng rng(seed ^ 0x6BA7F0666BA7F066ULL);
  // Deterministic victim pick without replacement (partial Fisher-Yates),
  // exactly the CrashSchedule shape: a node goes gray at most once.
  std::vector<NodeId> pool = nodes;
  const std::size_t n = count < pool.size() ? count : pool.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(pool.size() - i));
    std::swap(pool[i], pool[j]);
    GrayEvent ev;
    ev.node = pool[i];
    ev.at = static_cast<TimePoint>(
        rng.next_below(static_cast<std::uint64_t>(horizon)));
    const Duration lo = min_duration < 0 ? 0 : min_duration;
    const Duration hi = max_duration < lo ? lo : max_duration;
    ev.duration = lo + static_cast<Duration>(rng.next_below(
                           static_cast<std::uint64_t>(hi - lo) + 1));
    const double flo = min_factor < 1.0 ? 1.0 : min_factor;
    const double fhi = max_factor < flo ? flo : max_factor;
    // Quantized factor draw (1/100ths) keeps the schedule replayable
    // without floating-point uniform helpers.
    ev.service_factor =
        flo + static_cast<double>(rng.next_below(
                  static_cast<std::uint64_t>((fhi - flo) * 100.0) + 1)) /
                  100.0;
    if (stall_probability > 0 && rng.chance(stall_probability) &&
        ev.duration > 0) {
      ev.stall_period = ev.duration / 20;
      ev.stall_duration = ev.stall_period / 10;
    }
    schedule.events.push_back(ev);
  }
  std::sort(schedule.events.begin(), schedule.events.end(),
            [](const GrayEvent& a, const GrayEvent& b) {
              return a.at != b.at ? a.at < b.at : a.node.value < b.node.value;
            });
  return schedule;
}

FaultInjector::FaultInjector(obs::MetricsRegistry* metrics)
    : owned_metrics_(metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(metrics != nullptr ? metrics : owned_metrics_.get()),
      messages_(&metrics_->counter("fault.messages")),
      drops_(&metrics_->counter("fault.drops")),
      duplicates_(&metrics_->counter("fault.duplicates")),
      resets_(&metrics_->counter("fault.resets")),
      corruptions_(&metrics_->counter("fault.corruptions")),
      delays_(&metrics_->counter("fault.delays")) {}

void FaultInjector::arm(FaultPlan plan) {
  std::lock_guard lock(mutex_);
  plan_ = plan;
  seq_ = 0;
  events_.clear();
  active_.store(plan_.active(), std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard lock(mutex_);
  plan_ = FaultPlan{};
  active_.store(false, std::memory_order_relaxed);
}

FaultPlan FaultInjector::plan() const {
  std::lock_guard lock(mutex_);
  return plan_;
}

FaultDecision FaultInjector::next(std::size_t frame_size) {
  std::unique_lock lock(mutex_);
  const std::uint64_t seq = seq_++;
  const FaultDecision d = plan_.decide(seq, frame_size);
  auto log = [&](FaultKind kind, std::uint64_t detail) {
    if (events_.size() < kMaxEvents) events_.push_back({seq, kind, detail});
  };
  if (d.reset) log(FaultKind::reset, 0);
  if (d.drop) log(FaultKind::drop, 0);
  if (d.duplicate) log(FaultKind::duplicate, 0);
  if (d.delay > 0) log(FaultKind::delay, static_cast<std::uint64_t>(d.delay));
  for (std::uint32_t off : d.corrupt_offsets) log(FaultKind::corrupt, off);
  lock.unlock();

  messages_->inc();
  if (d.reset) resets_->inc();
  if (d.drop) drops_->inc();
  if (d.duplicate) duplicates_->inc();
  if (d.delay > 0) delays_->inc();
  if (!d.corrupt_offsets.empty()) corruptions_->inc();
  return d;
}

void FaultInjector::corrupt(Bytes& frame, const FaultDecision& d) {
  if (frame.empty()) return;
  for (std::uint32_t off : d.corrupt_offsets) frame[off % frame.size()] ^= 0xA5;
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::uint64_t FaultInjector::sequence() const {
  std::lock_guard lock(mutex_);
  return seq_;
}

}  // namespace clc::fault
