// Deterministic fault plans (chaos-engineering layer).
//
// A FaultPlan describes a probabilistic fault mix -- message drop,
// duplication, reordering delay, extra latency, connection reset, byte
// corruption -- whose per-message decisions are a *pure function* of
// (seed, message sequence number). That makes a schedule replayable: the
// same plan produces the same decision for message N whether the message
// flows through the discrete-event simulator's network, the in-process
// loopback transport, or real TCP, and regardless of thread interleaving.
//
// A FaultInjector pairs a plan with a monotone sequence counter, metrics
// ("fault.*" in the shared registry) and a bounded event log that the
// determinism tests compare across runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace clc::fault {

enum class FaultKind : std::uint8_t {
  drop = 0,
  duplicate = 1,
  delay = 2,
  reorder = 3,
  corrupt = 4,
  reset = 5,
};

const char* fault_kind_name(FaultKind k) noexcept;

/// What happens to one message. Multiple faults can apply (e.g. a delayed
/// duplicate); `drop` and `reset` win over the rest.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool reset = false;      // connection reset: caller sees Errc::unreachable
  Duration delay = 0;      // extra latency (µs); includes reorder jitter
  std::vector<std::uint32_t> corrupt_offsets;  // byte positions to flip

  [[nodiscard]] bool any() const noexcept {
    return drop || duplicate || reset || delay > 0 || !corrupt_offsets.empty();
  }
};

/// The seeded fault mix. All probabilities are per message, drawn
/// independently in a fixed order so decisions replay exactly.
struct FaultPlan {
  std::uint64_t seed = 0;
  double drop_probability = 0;
  double duplicate_probability = 0;
  double reset_probability = 0;
  double corrupt_probability = 0;
  int corrupt_max_bytes = 3;       // 1..N flipped bytes per corrupted frame
  double delay_probability = 0;
  Duration delay_min = 0;          // uniform extra latency in [min, max]
  Duration delay_max = 0;
  Duration reorder_jitter = 0;     // uniform [0, jitter] added to *every*
                                   // message; lets later messages overtake

  [[nodiscard]] bool active() const noexcept {
    return drop_probability > 0 || duplicate_probability > 0 ||
           reset_probability > 0 || corrupt_probability > 0 ||
           delay_probability > 0 || reorder_jitter > 0;
  }

  /// The fate of message `seq` of size `frame_size`. Pure: same
  /// (plan, seq, frame_size) always yields the same decision.
  [[nodiscard]] FaultDecision decide(std::uint64_t seq,
                                     std::size_t frame_size) const;
};

/// One scheduled node crash (and optional restart) on virtual time.
struct CrashEvent {
  NodeId node;
  TimePoint at = 0;           // virtual time of the crash
  Duration restart_after = 0; // 0 = the node stays down for good

  bool operator==(const CrashEvent&) const = default;
};

/// A replayable crash/restart timetable: like FaultPlan, the schedule is a
/// pure function of its inputs, so two same-seed chaos runs kill and revive
/// exactly the same nodes at exactly the same virtual times.
struct CrashSchedule {
  std::vector<CrashEvent> events;  // sorted by `at`

  /// Build a schedule of `count` crashes uniformly over [0, horizon),
  /// drawn from `nodes`, each restarting after a uniform downtime in
  /// [min_downtime, max_downtime] (0 = never restarts). A node is crashed
  /// at most once.
  static CrashSchedule random(std::uint64_t seed,
                              const std::vector<NodeId>& nodes,
                              std::size_t count, Duration horizon,
                              Duration min_downtime, Duration max_downtime);
};

/// One severed direction of a link: traffic from `from` to `to` is lost
/// while the cut is in force. A symmetric partition is two cuts, one per
/// direction; an *asymmetric* fault cuts only one (a→b down, b→a up).
struct LinkCut {
  NodeId from;
  NodeId to;

  bool operator==(const LinkCut&) const = default;
  bool operator<(const LinkCut& o) const noexcept {
    return from.value != o.from.value ? from.value < o.from.value
                                      : to.value < o.to.value;
  }
};

/// One partition episode: at `at` every listed directed cut appears, and
/// `heal_after` later they all heal at once (0 = the split never heals).
struct PartitionEvent {
  TimePoint at = 0;
  Duration heal_after = 0;
  std::vector<LinkCut> cuts;

  bool operator==(const PartitionEvent&) const = default;
};

/// A replayable partition timetable: CrashSchedule's purity contract, for
/// links instead of processes. The same seed cuts and heals exactly the
/// same directions at exactly the same virtual times on every run.
struct PartitionSchedule {
  std::vector<PartitionEvent> events;  // sorted by `at`

  /// Full bidirectional split between two node sets.
  static PartitionEvent split(TimePoint at, Duration heal_after,
                              const std::vector<NodeId>& side_a,
                              const std::vector<NodeId>& side_b);

  /// `count` episodes uniformly over [0, horizon). Each episode splits a
  /// random non-trivial subset of `nodes` from the rest for a uniform
  /// duration in [min_duration, max_duration] (0 = never heals); with
  /// probability `asymmetric_probability` the episode severs only the
  /// minority→majority direction, so the cut-off nodes still *hear* the
  /// rest of the network but cannot answer it.
  static PartitionSchedule random(std::uint64_t seed,
                                  const std::vector<NodeId>& nodes,
                                  std::size_t count, Duration horizon,
                                  Duration min_duration, Duration max_duration,
                                  double asymmetric_probability = 0);
};

/// One gray-failure episode (DESIGN.md §17): at `at`, `node` turns *slow*
/// -- emphatically not dead -- until `duration` elapses. Three degradation
/// axes compose: service-rate degradation multiplies the node's outbound
/// delivery delay (a busy or thermally-throttled process answers late),
/// `outbound_delay` adds a fixed one-way penalty (asymmetric path: the
/// node hears the world on time but its own frames crawl), and an optional
/// stuck-worker cadence freezes the node's inbound processing entirely for
/// `stall_duration` every `stall_period` (a wedged thread that recovers).
struct GrayEvent {
  NodeId node;
  TimePoint at = 0;
  Duration duration = 0;        // 0 = gray for good (stalls then fire once)
  double service_factor = 1.0;  // outbound delay multiplier (>= 1)
  Duration outbound_delay = 0;  // fixed extra one-way delay, node -> *
  Duration stall_period = 0;    // 0 = no stuck-worker stalls
  Duration stall_duration = 0;  // length of each freeze

  bool operator==(const GrayEvent&) const = default;
};

/// A replayable gray-failure timetable: the CrashSchedule purity contract
/// for slowness instead of death. The same seed degrades exactly the same
/// nodes, by exactly the same factors, at exactly the same virtual times.
struct GraySchedule {
  std::vector<GrayEvent> events;  // sorted by `at`

  /// `count` episodes uniformly over [0, horizon), drawn from `nodes` (a
  /// node is degraded at most once). Each runs for a uniform duration in
  /// [min_duration, max_duration] with a service factor uniform in
  /// [min_factor, max_factor]; with probability `stall_probability` the
  /// episode also carries a stuck-worker cadence (stalls of a tenth of the
  /// period, every twentieth of the episode).
  static GraySchedule random(std::uint64_t seed,
                             const std::vector<NodeId>& nodes,
                             std::size_t count, Duration horizon,
                             Duration min_duration, Duration max_duration,
                             double min_factor, double max_factor,
                             double stall_probability = 0);
};

/// One applied fault, for the replay/determinism log.
struct FaultEvent {
  std::uint64_t seq = 0;
  FaultKind kind = FaultKind::drop;
  std::uint64_t detail = 0;  // delay µs, corrupt offset, ...

  bool operator==(const FaultEvent&) const = default;
};

/// Plan + sequence counter + accounting. Thread-safe; the inactive fast
/// path is one relaxed atomic load.
class FaultInjector {
 public:
  /// `metrics` shares an external registry; when null the injector owns one.
  explicit FaultInjector(obs::MetricsRegistry* metrics = nullptr);

  /// Install a plan and restart the sequence/event log.
  void arm(FaultPlan plan);
  /// Remove the plan; messages flow untouched.
  void disarm();
  [[nodiscard]] bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] FaultPlan plan() const;

  /// Consume the next sequence number and return the decision for it,
  /// logging applied faults and bumping the "fault.*" counters.
  FaultDecision next(std::size_t frame_size);

  /// Flip the decided bytes in place (XOR 0xA5, offsets mod frame size).
  static void corrupt(Bytes& frame, const FaultDecision& d);

  [[nodiscard]] std::vector<FaultEvent> events() const;
  [[nodiscard]] std::uint64_t sequence() const;

 private:
  static constexpr std::size_t kMaxEvents = 65536;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* messages_;
  obs::Counter* drops_;
  obs::Counter* duplicates_;
  obs::Counter* resets_;
  obs::Counter* corruptions_;
  obs::Counter* delays_;
  std::atomic<bool> active_{false};
  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::uint64_t seq_ = 0;
  std::vector<FaultEvent> events_;
};

}  // namespace clc::fault
