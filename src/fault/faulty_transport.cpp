#include "fault/faulty_transport.hpp"

#include <chrono>
#include <thread>

namespace clc::fault {

void FaultyTransport::sleep(Duration d) {
  if (d <= 0) return;
  if (sleep_fn_) {
    sleep_fn_(d);
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(d));
}

Result<Bytes> FaultyTransport::apply(BytesView frame, bool request_direction,
                                     bool* duplicate) {
  const FaultDecision d = injector_.next(frame.size());
  if (d.reset)
    return Error{Errc::unreachable, "connection reset by fault plan"};
  if (d.drop)
    return Error{Errc::timeout, request_direction
                                    ? "request dropped by fault plan"
                                    : "reply dropped by fault plan"};
  if (d.delay > 0) sleep(d.delay);
  if (duplicate != nullptr) *duplicate = d.duplicate;
  Bytes out(frame.begin(), frame.end());
  FaultInjector::corrupt(out, d);
  return out;
}

Result<Bytes> FaultyTransport::roundtrip(const std::string& endpoint,
                                         BytesView frame) {
  if (!injector_.active()) return inner_->roundtrip(endpoint, frame);

  // Request crossing.
  bool duplicate = false;
  auto request = apply(frame, /*request_direction=*/true, &duplicate);
  if (!request) return request.error();
  if (duplicate) (void)inner_->roundtrip(endpoint, *request);
  auto reply = inner_->roundtrip(endpoint, *request);
  if (!reply) return reply.error();

  // Reply crossing: its own message, its own decision.
  auto faulted = apply(*reply, /*request_direction=*/false, nullptr);
  if (!faulted) return faulted.error();
  return faulted;
}

void FaultyTransport::submit(const std::string& endpoint, BytesView frame,
                             orb::ReplyCallback cb) {
  if (!injector_.active()) {
    inner_->submit(endpoint, frame, std::move(cb));
    return;
  }

  // Request crossing, decided now so a seeded plan consumes decisions in
  // submission order regardless of how replies interleave.
  bool duplicate = false;
  auto request = apply(frame, /*request_direction=*/true, &duplicate);
  if (!request) {
    cb(request.error());
    return;
  }
  if (duplicate)
    inner_->submit(endpoint, *request, [](Result<Bytes>) {});
  inner_->submit(endpoint, *request, [this, cb = std::move(cb)](
                                         Result<Bytes> reply) {
    if (!reply) {
      cb(reply.error());
      return;
    }
    // Reply crossing: its own message, its own decision.
    cb(apply(*reply, /*request_direction=*/false, nullptr));
  });
}

Result<void> FaultyTransport::send_oneway(const std::string& endpoint,
                                          BytesView frame) {
  if (!injector_.active()) return inner_->send_oneway(endpoint, frame);

  bool duplicate = false;
  auto request = apply(frame, /*request_direction=*/true, &duplicate);
  if (!request) {
    // One-way drops are silent, as on a real network; resets still surface.
    if (request.error().code == Errc::timeout) return {};
    return request.error();
  }
  if (duplicate) (void)inner_->send_oneway(endpoint, *request);
  return inner_->send_oneway(endpoint, *request);
}

}  // namespace clc::fault
