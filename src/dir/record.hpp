// Replicated service directory records (DESIGN.md §14).
//
// A ServiceRecord binds a service name to the ObjectRef currently serving
// it, stamped with the publishing host, that host's incarnation, the
// partition epoch under which the binding was established and the virtual
// publish time. Records are plain CDR values: nodes publish them to the R
// directory replicas, replicas gossip whole tables through the existing
// anti-entropy cadence, and subscribed sessions receive them inside change
// notifications.
//
// The (epoch, stamp, retired, incarnation, host) ordering implemented by
// newer_than() is a total order, so replica merge is a pure max and tables
// converge byte-identically regardless of gossip arrival order. It is also
// what fences resurrection: a split-brain loser's republish carries the
// pre-split epoch and loses to the quorum side's post-verdict record, and
// tombstones are published under the epoch that *established* the binding
// they retire, so a retired loser can kill exactly its own generation and
// never the winner's later-epoch record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "orb/cdr.hpp"
#include "orb/object_ref.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"
#include "util/result.hpp"

namespace clc::dir {

/// Well-known object key of a node's Directory servant: like the
/// NodeService key, peers construct references from the NodeId alone.
inline Uuid directory_service_key(NodeId id) {
  return Uuid{0xC0DEC0DE00000002ULL, id.value};
}

/// The directory wire contract, registered by nodes (server side) and
/// sessions (client side) alike. Kept byte-identical in both so the
/// InterfaceRepository's identical-redefinition rule admits either order.
[[nodiscard]] const char* directory_idl() noexcept;

/// One service binding as stored on a directory replica.
struct ServiceRecord {
  std::string service;       // logical service name, e.g. "demo.counter"
  orb::ObjectRef ref;        // the object currently serving it
  NodeId host;               // node hosting the instance
  std::uint64_t incarnation = 1;  // host's incarnation at publish time
  std::uint64_t epoch = 1;        // partition epoch at publish time
  std::uint64_t stamp = 0;        // virtual publish time (total order
                                  // within an epoch; deterministic replay)
  bool retired = false;      // tombstone: the binding is gone
  std::string idl;           // the serving interface's IDL text, so a
                             // session can register the types locally and
                             // invoke without a node-level fetch (empty on
                             // tombstones)

  bool operator==(const ServiceRecord&) const = default;

  /// True when this record supersedes `other` for the same service name.
  /// Order: higher epoch, then later stamp, then retired-beats-active,
  /// then higher incarnation, then lower host id. Total and symmetric, so
  /// every replica converges on the same winner regardless of gossip order.
  [[nodiscard]] bool newer_than(const ServiceRecord& other) const noexcept;

  void marshal(orb::CdrWriter& w) const;
  static Result<ServiceRecord> unmarshal(orb::CdrReader& r);

  /// Standalone encapsulated form (what crosses the wire as a DirBlob).
  [[nodiscard]] Bytes encode() const;
  static Result<ServiceRecord> decode(BytesView data);
};

/// Group-membership convention: replicas of one logical service register
/// under `group "#" tag` (e.g. "demo.counter#2"); the bare group name
/// itself may also carry a binding. lookup_group returns every active
/// member, framed exactly like an anti-entropy table (count + records).
[[nodiscard]] bool service_in_group(const std::string& service,
                                    const std::string& group) noexcept;

/// Encapsulated record sequence (the lookup_group reply DirBlob).
[[nodiscard]] Bytes encode_records(const std::vector<ServiceRecord>& records);
Result<std::vector<ServiceRecord>> decode_records(BytesView data);

/// What a change notification reports about a service.
enum class ChangeKind : std::uint8_t {
  added = 0,    // service appeared (first active record)
  moved = 1,    // service rebound to a different ref/host
  retired = 2,  // service binding tombstoned
};

const char* change_kind_name(ChangeKind k) noexcept;

/// One change pushed to subscribed sessions over a oneway CLCP invocation.
struct DirNotification {
  ChangeKind kind = ChangeKind::added;
  ServiceRecord record;  // the record that won (or the tombstone)

  bool operator==(const DirNotification&) const = default;

  [[nodiscard]] Bytes encode() const;
  static Result<DirNotification> decode(BytesView data);
};

}  // namespace clc::dir
