#include "dir/directory.hpp"

#include <algorithm>

namespace clc::dir {

ServiceDirectory::ServiceDirectory(obs::MetricsRegistry* metrics) {
  if (metrics) {
    published_ = &metrics->counter("dir.published");
    fenced_ = &metrics->counter("dir.fenced");
    merges_ = &metrics->counter("dir.merges");
    notifications_sent_ = &metrics->counter("dir.notifications_sent");
  }
}

ApplyResult ServiceDirectory::apply(const ServiceRecord& record) {
  auto it = table_.find(record.service);
  if (it == table_.end()) {
    table_.emplace(record.service, record);
    if (published_) published_->inc();
    // A tombstone arriving first (gossip reorder) is stored for fencing but
    // announces nothing: subscribers never cached the binding it retires.
    if (!record.retired) notify_all(ChangeKind::added, record);
    return ApplyResult::accepted_new;
  }
  ServiceRecord& stored = it->second;
  if (record == stored) return ApplyResult::unchanged;
  // A pure max over newer_than()'s total order: commutative and
  // associative, so every replica converges on byte-identical tables no
  // matter the gossip arrival order. Tombstones carry the epoch that
  // established the binding they retire, which is what stops a dual-primary
  // loser's retirement from outranking the winner's later-epoch record.
  if (!record.newer_than(stored)) {
    if (fenced_) fenced_->inc();
    return ApplyResult::fenced;
  }
  const ChangeKind kind = record.retired   ? ChangeKind::retired
                          : stored.retired ? ChangeKind::added
                                           : ChangeKind::moved;
  stored = record;
  if (published_) published_->inc();
  notify_all(kind, record);
  return ApplyResult::accepted_changed;
}

Result<ServiceRecord> ServiceDirectory::lookup(
    const std::string& service) const {
  auto it = table_.find(service);
  if (it == table_.end() || it->second.retired)
    return Error{Errc::not_found, "no active record for " + service};
  return it->second;
}

std::vector<ServiceRecord> ServiceDirectory::lookup_group(
    const std::string& group) const {
  std::vector<ServiceRecord> out;
  // table_ is name-ordered: the group's members ("g", then "g#...") sit in
  // one contiguous range starting at lower_bound(group).
  for (auto it = table_.lower_bound(group); it != table_.end(); ++it) {
    if (!service_in_group(it->first, group)) {
      if (it->first.compare(0, group.size(), group) != 0) break;
      continue;  // e.g. "g2" sorts between "g" and "g#": keep scanning
    }
    if (!it->second.retired) out.push_back(it->second);
  }
  return out;
}

std::vector<ServiceRecord> ServiceDirectory::records() const {
  std::vector<ServiceRecord> out;
  out.reserve(table_.size());
  for (const auto& [_, rec] : table_) out.push_back(rec);
  return out;
}

Bytes ServiceDirectory::encode_table() const {
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_sequence_length(static_cast<std::uint32_t>(table_.size()));
  for (const auto& [_, rec] : table_) rec.marshal(w);
  return w.take();
}

Result<std::size_t> ServiceDirectory::merge_table(BytesView table) {
  orb::CdrReader r(table);
  if (auto enc = r.begin_encapsulation(); !enc) return enc.error();
  auto count = r.read_sequence_length();
  if (!count) return count.error();
  if (*count > r.remaining())
    return Error{Errc::corrupt_data, "directory table count exceeds payload"};
  std::size_t accepted = 0;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto rec = ServiceRecord::unmarshal(r);
    if (!rec) return rec.error();
    const ApplyResult res = apply(*rec);
    if (res == ApplyResult::accepted_new ||
        res == ApplyResult::accepted_changed)
      ++accepted;
  }
  if (merges_) merges_->inc();
  return accepted;
}

void ServiceDirectory::subscribe(const orb::ObjectRef& subscriber) {
  for (const auto& s : subscribers_)
    if (s == subscriber) return;
  subscribers_.push_back(subscriber);
}

void ServiceDirectory::unsubscribe(const orb::ObjectRef& subscriber) {
  std::erase(subscribers_, subscriber);
}

void ServiceDirectory::clear() {
  table_.clear();
  subscribers_.clear();
}

void ServiceDirectory::notify_all(ChangeKind kind,
                                  const ServiceRecord& record) {
  if (!notify_ || subscribers_.empty()) return;
  const DirNotification n{kind, record};
  // Snapshot: a notify callback may re-enter subscribe/unsubscribe.
  const auto targets = subscribers_;
  for (const auto& sub : targets) {
    notify_(sub, n);
    if (notifications_sent_) notifications_sent_->inc();
  }
}

}  // namespace clc::dir
