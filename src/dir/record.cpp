#include "dir/record.hpp"

namespace clc::dir {

const char* directory_idl() noexcept {
  return "module clc {"
         " typedef sequence<octet> DirBlob;"
         " interface Directory {"
         "  void publish(in DirBlob record);"
         "  DirBlob lookup(in string service);"
         "  DirBlob lookup_group(in string group);"
         "  DirBlob exchange_table(in DirBlob table);"
         "  void subscribe(in Object subscriber);"
         "  void unsubscribe(in Object subscriber);"
         " };"
         " interface DirSubscriber {"
         "  oneway void notify(in DirBlob notification);"
         " };"
         "};";
}

bool ServiceRecord::newer_than(const ServiceRecord& other) const noexcept {
  if (epoch != other.epoch) return epoch > other.epoch;
  if (stamp != other.stamp) return stamp > other.stamp;
  if (retired != other.retired) return retired;
  if (incarnation != other.incarnation) return incarnation > other.incarnation;
  return host.value < other.host.value;
}

void ServiceRecord::marshal(orb::CdrWriter& w) const {
  w.write_string(service);
  ref.marshal(w);
  w.write_ulonglong(host.value);
  w.write_ulonglong(incarnation);
  w.write_ulonglong(epoch);
  w.write_ulonglong(stamp);
  w.write_boolean(retired);
  w.write_string(idl);
}

Result<ServiceRecord> ServiceRecord::unmarshal(orb::CdrReader& r) {
  ServiceRecord rec;
  auto service = r.read_string();
  if (!service) return service.error();
  rec.service = std::move(*service);
  auto ref = orb::ObjectRef::unmarshal(r);
  if (!ref) return ref.error();
  rec.ref = std::move(*ref);
  auto host = r.read_ulonglong();
  if (!host) return host.error();
  rec.host = NodeId{*host};
  auto inc = r.read_ulonglong();
  if (!inc) return inc.error();
  rec.incarnation = *inc;
  auto epoch = r.read_ulonglong();
  if (!epoch) return epoch.error();
  rec.epoch = *epoch;
  auto stamp = r.read_ulonglong();
  if (!stamp) return stamp.error();
  rec.stamp = *stamp;
  auto retired = r.read_boolean();
  if (!retired) return retired.error();
  rec.retired = *retired;
  auto idl = r.read_string();
  if (!idl) return idl.error();
  rec.idl = std::move(*idl);
  return rec;
}

Bytes ServiceRecord::encode() const {
  orb::CdrWriter w;
  w.begin_encapsulation();
  marshal(w);
  return w.take();
}

Result<ServiceRecord> ServiceRecord::decode(BytesView data) {
  orb::CdrReader r(data);
  if (auto enc = r.begin_encapsulation(); !enc) return enc.error();
  return unmarshal(r);
}

bool service_in_group(const std::string& service,
                      const std::string& group) noexcept {
  if (service == group) return true;
  return service.size() > group.size() + 1 &&
         service.compare(0, group.size(), group) == 0 &&
         service[group.size()] == '#';
}

Bytes encode_records(const std::vector<ServiceRecord>& records) {
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_sequence_length(static_cast<std::uint32_t>(records.size()));
  for (const auto& rec : records) rec.marshal(w);
  return w.take();
}

Result<std::vector<ServiceRecord>> decode_records(BytesView data) {
  orb::CdrReader r(data);
  if (auto enc = r.begin_encapsulation(); !enc) return enc.error();
  auto count = r.read_sequence_length();
  if (!count) return count.error();
  if (*count > r.remaining())
    return Error{Errc::corrupt_data, "record count exceeds payload"};
  std::vector<ServiceRecord> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto rec = ServiceRecord::unmarshal(r);
    if (!rec) return rec.error();
    out.push_back(std::move(*rec));
  }
  return out;
}

const char* change_kind_name(ChangeKind k) noexcept {
  switch (k) {
    case ChangeKind::added:
      return "added";
    case ChangeKind::moved:
      return "moved";
    case ChangeKind::retired:
      return "retired";
  }
  return "unknown";
}

Bytes DirNotification::encode() const {
  orb::CdrWriter w;
  w.begin_encapsulation();
  w.write_octet(static_cast<std::uint8_t>(kind));
  record.marshal(w);
  return w.take();
}

Result<DirNotification> DirNotification::decode(BytesView data) {
  orb::CdrReader r(data);
  if (auto enc = r.begin_encapsulation(); !enc) return enc.error();
  auto kind = r.read_octet();
  if (!kind) return kind.error();
  if (*kind > static_cast<std::uint8_t>(ChangeKind::retired))
    return Error{Errc::corrupt_data, "bad directory change kind"};
  DirNotification n;
  n.kind = static_cast<ChangeKind>(*kind);
  auto rec = ServiceRecord::unmarshal(r);
  if (!rec) return rec.error();
  n.record = std::move(*rec);
  return n;
}

}  // namespace clc::dir
