// Directory replica state: a fenced last-writer-wins table of
// ServiceRecords plus the subscriber list notifications fan out to.
//
// The class is deliberately transport-free (mirroring CheckpointStore):
// the owning Node supplies a NotifyFn that delivers DirNotifications over
// oneway CLCP sends, and drives table gossip by exchanging encode_table()
// blobs during its anti-entropy rounds. apply() is the single entry point
// for publishes, gossip merges, and local lifecycle transitions alike, so
// every path goes through the same fencing rules.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dir/record.hpp"
#include "obs/metrics.hpp"
#include "orb/object_ref.hpp"
#include "util/result.hpp"

namespace clc::dir {

/// Outcome of offering a record to the table.
enum class ApplyResult : std::uint8_t {
  accepted_new = 0,   // first record for this service
  accepted_changed,   // superseded the stored record
  fenced,             // lost to the stored record (stale epoch/stamp/etc.)
  unchanged,          // byte-identical to the stored record
};

class ServiceDirectory {
 public:
  using NotifyFn =
      std::function<void(const orb::ObjectRef& subscriber,
                         const DirNotification& notification)>;

  explicit ServiceDirectory(obs::MetricsRegistry* metrics = nullptr);

  /// Offer a record. Fencing rules:
  ///  - a stored record only yields to one that newer_than() it;
  ///  - a retirement additionally only applies if it names the host of the
  ///    stored record — a dual-primary loser retiring *its own* copy must
  ///    not tombstone the winner's active binding.
  /// Accepted changes notify every subscriber (added/moved/retired).
  ApplyResult apply(const ServiceRecord& record);

  /// Active (non-retired) record for a service, or not_found.
  [[nodiscard]] Result<ServiceRecord> lookup(const std::string& service) const;

  /// Active members of a replica group: every non-retired record whose
  /// service name is `group` itself or `group "#" tag`. Service-name order
  /// (deterministic across converged replicas); empty when none.
  [[nodiscard]] std::vector<ServiceRecord> lookup_group(
      const std::string& group) const;

  /// All records including tombstones, in service-name order.
  [[nodiscard]] std::vector<ServiceRecord> records() const;

  /// Whole-table encapsulation for anti-entropy exchange. Deterministic:
  /// records are emitted in service-name order, so converged replicas
  /// produce byte-identical tables.
  [[nodiscard]] Bytes encode_table() const;

  /// Merge a peer's table; every record goes through apply(). Returns how
  /// many records were accepted (new or changed).
  Result<std::size_t> merge_table(BytesView table);

  void subscribe(const orb::ObjectRef& subscriber);
  void unsubscribe(const orb::ObjectRef& subscriber);
  [[nodiscard]] std::size_t subscriber_count() const noexcept {
    return subscribers_.size();
  }

  void set_notify_fn(NotifyFn fn) { notify_ = std::move(fn); }

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
  void clear();

 private:
  void notify_all(ChangeKind kind, const ServiceRecord& record);

  std::map<std::string, ServiceRecord> table_;
  std::vector<orb::ObjectRef> subscribers_;
  NotifyFn notify_;
  obs::Counter* published_ = nullptr;
  obs::Counter* fenced_ = nullptr;
  obs::Counter* merges_ = nullptr;
  obs::Counter* notifications_sent_ = nullptr;
};

}  // namespace clc::dir
