// Simulated message network for protocol experiments.
//
// Hosts (actors) attach under their NodeId and receive byte payloads; the
// network applies a latency model (base + jitter + per-byte cost), drop
// probability, crash (detach) and partitions. Per-message and per-node byte
// accounting feeds the bandwidth experiments (E3/E4), so *all* protocol
// traffic in the benches flows through send().
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace clc::sim {

/// Actor interface: a protocol endpoint living on the simulated network.
class SimHost {
 public:
  virtual ~SimHost() = default;
  virtual void on_message(NodeId from, const Bytes& payload) = 0;
};

class SimNetwork {
 public:
  struct LinkModel {
    Duration base_latency = milliseconds(1);
    Duration jitter = 0;            // uniform extra in [0, jitter]
    double bytes_per_second = 0;    // 0 = infinite
    double drop_probability = 0;
  };

  /// `metrics` shares an external registry; when null the network owns one.
  SimNetwork(Simulator& sim, std::uint64_t seed = 42,
             obs::MetricsRegistry* metrics = nullptr)
      : sim_(sim),
        rng_(seed),
        owned_metrics_(metrics == nullptr
                           ? std::make_unique<obs::MetricsRegistry>()
                           : nullptr),
        metrics_(metrics != nullptr ? metrics : owned_metrics_.get()),
        messages_sent_(&metrics_->counter("sim.messages_sent")),
        messages_delivered_(&metrics_->counter("sim.messages_delivered")),
        messages_dropped_(&metrics_->counter("sim.messages_dropped")),
        bytes_sent_(&metrics_->counter("sim.bytes_sent")),
        stale_incarnation_dropped_(
            &metrics_->counter("sim.stale_incarnation_dropped")) {}

  void set_link_model(LinkModel model) { model_ = model; }
  /// Optional topology-aware latency: overrides base_latency per pair.
  void set_latency_fn(std::function<Duration(NodeId, NodeId)> fn) {
    latency_fn_ = std::move(fn);
  }
  /// Subject every message to a seeded fault plan (non-owning; may be
  /// null). The same injector can drive a FaultyTransport, so one schedule
  /// replays both in-sim and over a real transport.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

  void attach(NodeId id, SimHost* host);
  /// Crash: in-flight messages to this node are dropped on delivery.
  void detach(NodeId id);
  [[nodiscard]] bool attached(NodeId id) const { return hosts_.count(id) != 0; }

  /// Declare a node's current incarnation (bumped on restart). Frames are
  /// addressed to the destination incarnation current at send time; if the
  /// destination restarts while they are in flight -- e.g. pre-partition
  /// traffic released by a heal -- they are dropped at the transport
  /// boundary ("sim.stale_incarnation_dropped") instead of reaching the new
  /// life of the process.
  void set_incarnation(NodeId id, std::uint64_t incarnation) {
    incarnations_[id] = incarnation;
  }
  [[nodiscard]] std::uint64_t incarnation_of(NodeId id) const {
    auto it = incarnations_.find(id);
    return it == incarnations_.end() ? 1 : it->second;
  }

  /// Cut/heal links between two node sets (symmetric network partition).
  void partition(std::set<NodeId> side_a, std::set<NodeId> side_b);
  /// k-way split: nodes in different groups cannot exchange messages;
  /// nodes absent from every group are unrestricted. Replaces any previous
  /// group split (mega-cluster zone-aligned partitions).
  void partition_groups(std::vector<std::set<NodeId>> groups);
  void heal_partition();

  /// Sever one *direction* of a link: messages from→to are lost while the
  /// cut is in force, to→from traffic is untouched (asymmetric fault).
  void cut_link(NodeId from, NodeId to) { cut_links_.insert({from, to}); }
  void restore_link(NodeId from, NodeId to) { cut_links_.erase({from, to}); }
  /// Arm a replayable partition timetable: every episode's cuts appear at
  /// its virtual `at` and heal `heal_after` later (events scheduled on the
  /// simulator, so determinism follows from the schedule's purity).
  void apply_schedule(const fault::PartitionSchedule& schedule);
  [[nodiscard]] bool link_cut(NodeId from, NodeId to) const {
    return blocked(from, to);
  }

  /// Gray failure (DESIGN.md §17): degrade one node without killing it.
  /// Its *outbound* delivery delay is multiplied by `service_factor` and
  /// padded by `outbound_delay` (one-way asymmetry: inbound traffic is
  /// untouched), modelling a process that hears the world on time but
  /// answers late. Factor 1 + delay 0 clears the degradation.
  void set_node_degradation(NodeId id, double service_factor,
                            Duration outbound_delay = 0);
  void clear_node_degradation(NodeId id);
  [[nodiscard]] bool degraded(NodeId id) const {
    return degradations_.count(id) != 0;
  }

  /// Stuck worker: freeze `id`'s inbound processing until now+`duration`.
  /// Frames arriving during the freeze are not lost -- they deliver, in
  /// arrival order, the moment the stall lifts (a wedged thread resuming
  /// its queue). Overlapping stalls extend the freeze.
  void stall_node(NodeId id, Duration duration);

  /// Arm a replayable gray-failure timetable: each episode's degradation
  /// appears at `at`, recurs its stuck-worker stalls on the event cadence,
  /// and clears after `duration` (0 = degraded for good).
  void apply_gray_schedule(const fault::GraySchedule& schedule);

  /// Queue a message for delivery (latency applied). Sending to a detached
  /// or partitioned node silently loses the message, as on a real network.
  void send(NodeId from, NodeId to, Bytes payload);

  /// Completion notification for one send: `delivered` is true when the
  /// payload reached the destination host, false when it was lost (drop,
  /// partition, crash, stale incarnation). Fires in *virtual* time -- at
  /// the delivery instant, or immediately for a send-time loss.
  using DeliveryCallback = std::function<void(bool delivered)>;
  /// send() with a completion callback: the asynchronous-submission shape
  /// of the ORB transports, in simulation. Many sends may be outstanding,
  /// and their callbacks fire in delivery order, not submission order.
  void send(NodeId from, NodeId to, Bytes payload, DeliveryCallback on_delivery);

  /// Legacy view assembled from the metrics registry ("sim.*" names).
  struct Stats {
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_delivered = 0;
    std::uint64_t messages_dropped = 0;
    std::uint64_t bytes_sent = 0;
  };
  [[nodiscard]] Stats stats() const noexcept {
    Stats s;
    s.messages_sent = messages_sent_->value();
    s.messages_delivered = messages_delivered_->value();
    s.messages_dropped = messages_dropped_->value();
    s.bytes_sent = bytes_sent_->value();
    return s;
  }
  /// Zero every "sim.*" metric and the per-node byte accounting together.
  void reset_stats() {
    metrics_->reset("sim.");
    per_node_bytes_.clear();
  }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return *metrics_; }
  /// Bytes sent by one node (for per-node bandwidth accounting).
  [[nodiscard]] std::uint64_t bytes_sent_by(NodeId id) const {
    auto it = per_node_bytes_.find(id);
    return it == per_node_bytes_.end() ? 0 : it->second;
  }

 private:
  struct Degradation {
    double service_factor = 1.0;
    Duration outbound_delay = 0;
  };

  [[nodiscard]] bool blocked(NodeId a, NodeId b) const;
  [[nodiscard]] Duration delivery_delay(NodeId from, NodeId to,
                                        std::size_t bytes);
  bool deliver(NodeId from, NodeId to, std::uint64_t to_incarnation,
               const Bytes& payload);
  /// Delivery entry point that honors stuck-worker stalls: a stalled
  /// destination defers the frame (and its callback) to the stall end.
  void deliver_or_defer(NodeId from, NodeId to, std::uint64_t to_incarnation,
                        Bytes payload, DeliveryCallback cb);

  Simulator& sim_;
  Rng rng_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* messages_sent_;
  obs::Counter* messages_delivered_;
  obs::Counter* messages_dropped_;
  obs::Counter* bytes_sent_;
  LinkModel model_;
  std::function<Duration(NodeId, NodeId)> latency_fn_;
  fault::FaultInjector* fault_ = nullptr;
  obs::Counter* stale_incarnation_dropped_;
  std::map<NodeId, SimHost*> hosts_;
  std::map<NodeId, std::uint64_t> incarnations_;
  std::set<NodeId> partition_a_;
  std::set<NodeId> partition_b_;
  std::map<NodeId, int> group_of_;  // k-way split membership
  std::set<fault::LinkCut> cut_links_;  // directed (asymmetric) cuts
  std::map<NodeId, Degradation> degradations_;  // gray (slow) nodes
  std::map<NodeId, TimePoint> stalled_until_;   // stuck-worker freezes
  std::map<NodeId, std::uint64_t> per_node_bytes_;
};

}  // namespace clc::sim
