// Open-loop workload generation (overload robustness, DESIGN.md §16).
//
// Closed-loop load generators (N users, each think-then-call) are the wrong
// model for overload experiments: when the server slows down, a closed-loop
// generator slows down with it, so offered load self-throttles and the
// interesting regime -- demand exceeding capacity -- never materialises.
// OpenLoopGenerator instead models a large population of independent
// virtual users (10^5..10^6) whose aggregate arrivals form a Poisson
// process at a configured rate; arrivals keep coming at that rate no matter
// how the system responds. That is exactly the regime admission control and
// backpressure exist for.
//
// Request costs follow a heavy-tailed class mix (most calls cheap, a few
// 10x, a rare tail 100x), which is what makes naive FIFO queues collapse:
// one elephant stalls a convoy of mice. Everything runs on virtual time
// from a seeded Rng, so a workload is a pure function of (config, seed) and
// every overload scenario replays bit-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace clc::sim {

/// One class in the request mix: selection weight + mean service cost.
struct RequestClass {
  double weight = 1.0;
  Duration mean_cost = microseconds(200);
};

/// Default heavy-tail mix: 90% mice, 9% medium, 1% elephants (1x/10x/100x).
inline std::vector<RequestClass> heavy_tail_mix(
    Duration base_cost = microseconds(200)) {
  return {{0.90, base_cost},
          {0.09, base_cost * 10},
          {0.01, base_cost * 100}};
}

struct OpenLoopConfig {
  /// Aggregate arrival rate over the whole user population, calls/second.
  double arrival_rate_hz = 1000.0;
  /// Size of the virtual-user population arrivals are attributed to.
  std::size_t virtual_users = 100000;
  /// Request class mix (weights need not sum to 1; they are normalised).
  std::vector<RequestClass> mix = heavy_tail_mix();
  std::uint64_t seed = 0x0514EC7EDULL;
};

/// One generated request.
struct Arrival {
  TimePoint at = 0;          // virtual arrival time
  std::uint64_t user = 0;    // which virtual user issued it
  std::size_t cls = 0;       // index into the configured mix
  Duration cost = 0;         // sampled service demand
};

class OpenLoopGenerator {
 public:
  explicit OpenLoopGenerator(OpenLoopConfig config, TimePoint start = 0)
      : config_(std::move(config)), rng_(config_.seed), next_at_(start) {
    total_weight_ = 0;
    for (const auto& c : config_.mix) total_weight_ += c.weight;
    if (config_.mix.empty() || total_weight_ <= 0) {
      config_.mix = heavy_tail_mix();
      total_weight_ = 1.0;
    }
    advance_clock();
  }

  /// Time of the next arrival (never decreases).
  [[nodiscard]] TimePoint next_at() const noexcept { return next_at_; }

  /// Pop the next arrival from the Poisson process.
  Arrival next() {
    Arrival a;
    a.at = next_at_;
    a.user = rng_.next_below(
        static_cast<std::uint64_t>(config_.virtual_users == 0
                                       ? 1
                                       : config_.virtual_users));
    a.cls = pick_class();
    const auto mean =
        static_cast<double>(config_.mix[a.cls].mean_cost);
    a.cost = static_cast<Duration>(rng_.next_exponential(mean)) + 1;
    ++generated_;
    advance_clock();
    return a;
  }

  /// Drain every arrival with at <= horizon, in time order.
  std::vector<Arrival> drain_until(TimePoint horizon) {
    std::vector<Arrival> out;
    while (next_at_ <= horizon) out.push_back(next());
    return out;
  }

  /// Retarget the offered load mid-run (e.g. a load sweep or flash crowd).
  void set_arrival_rate(double hz) noexcept {
    config_.arrival_rate_hz = hz > 0 ? hz : 1.0;
  }
  [[nodiscard]] double arrival_rate() const noexcept {
    return config_.arrival_rate_hz;
  }
  [[nodiscard]] std::uint64_t generated() const noexcept { return generated_; }
  [[nodiscard]] const OpenLoopConfig& config() const noexcept {
    return config_;
  }

 private:
  std::size_t pick_class() {
    double r = rng_.next_double() * total_weight_;
    for (std::size_t i = 0; i < config_.mix.size(); ++i) {
      r -= config_.mix[i].weight;
      if (r < 0) return i;
    }
    return config_.mix.size() - 1;
  }

  void advance_clock() {
    // Poisson process: exponential inter-arrival gaps at the current rate.
    const double mean_gap_us = 1e6 / config_.arrival_rate_hz;
    const auto gap =
        static_cast<Duration>(rng_.next_exponential(mean_gap_us)) + 1;
    next_at_ += gap;
  }

  OpenLoopConfig config_;
  Rng rng_;
  TimePoint next_at_;
  double total_weight_ = 1.0;
  std::uint64_t generated_ = 0;
};

}  // namespace clc::sim
