// Deterministic discrete-event simulator.
//
// The cohesion and distributed-registry protocols are message-driven state
// machines; under the simulator they run against a virtual clock, which is
// what lets the benches evaluate 1000-node networks on one machine
// (see DESIGN.md substitutions). Events at equal timestamps fire in
// scheduling order (a monotone sequence number breaks ties), so runs are
// exactly reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/clock.hpp"

namespace clc::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Schedule an action at an absolute virtual time (>= now).
  void schedule_at(TimePoint t, Action action);
  /// Schedule after a delay from now.
  void schedule_after(Duration delay, Action action) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(action));
  }

  /// Run the next pending event; false when the queue is empty.
  bool step();
  /// Run events until the virtual clock passes `t` (events at exactly `t`
  /// are executed). The clock is left at `t`.
  void run_until(TimePoint t);
  /// Drain the queue (bounded by `max_events` as a runaway guard).
  std::size_t run(std::size_t max_events = 100000000);

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Scheduled {
    TimePoint at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace clc::sim
