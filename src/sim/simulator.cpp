#include "sim/simulator.hpp"

#include <stdexcept>

namespace clc::sim {

void Simulator::schedule_at(TimePoint t, Action action) {
  if (t < now_) t = now_;  // late events fire immediately, never in the past
  queue_.push(Scheduled{t, next_seq_++, std::move(action)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; move out via const_cast is UB-adjacent,
  // so copy the small struct fields and pop before executing (the action
  // may schedule more events).
  Scheduled next = queue_.top();
  queue_.pop();
  now_ = next.at;
  ++executed_;
  next.action();
  return true;
}

void Simulator::run_until(TimePoint t) {
  while (!queue_.empty() && queue_.top().at <= t) step();
  if (now_ < t) now_ = t;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  if (n == max_events && !queue_.empty())
    throw std::runtime_error("Simulator::run hit the event budget");
  return n;
}

}  // namespace clc::sim
