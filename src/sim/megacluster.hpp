// MegaCluster: a 500-2000 node virtual-time cluster in one process.
//
// The scale harness behind the `scale` test tier and bench_megacluster.
// Every node is a full CohesionNode (+ ZoneRouter in zoned mode) driven by
// the discrete-event simulator: virtual clocks, seeded delivery, byte-level
// bandwidth accounting -- so a 1000-node bring-up with churn and a 3-zone
// partition runs in seconds of wall time and replays byte-identically from
// the same seed.
//
// Following the felis exemplar (static `kMaxNrNode` cluster tables), the
// cluster layout is *configuration, not discovery*: capacity is fixed at
// kMaxNodes, node ids are dense (index i <-> NodeId{i+1}), zones are
// contiguous id ranges, and every node is constructed with the full zone
// bootstrap table. What remains dynamic -- root election, shard placement,
// failure detection -- is exactly what the protocols under test own.
//
// Header-only: clc_core depends on clc_sim, so this header (which needs
// both) is compiled into the test/bench translation units that link
// clc_core.
#pragma once

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "core/cohesion.hpp"
#include "core/zone.hpp"
#include "fault/plan.hpp"
#include "orb/cdr.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace clc::sim {

struct MegaClusterConfig {
  std::size_t nodes = 1000;
  /// Number of zones (hierarchical mode). 0 or 1 = a single unzoned tree;
  /// ignored in flat mode.
  std::size_t zones = 16;
  std::uint64_t seed = 42;
  core::CohesionConfig cohesion;  // mode/zone overridden per node
  Duration intra_zone_latency = milliseconds(1);
  Duration inter_zone_latency = milliseconds(20);
  /// Bring-up joins the cluster in batches of `join_batch` nodes spaced
  /// `join_batch_gap` apart (joins inside a batch staggered by
  /// `join_stagger`), so the root never absorbs 2000 simultaneous joins.
  std::size_t join_batch = 64;
  Duration join_batch_gap = milliseconds(400);
  Duration join_stagger = milliseconds(3);
  /// Flat-lookup baseline: every node knows the full roster (pre-seeded,
  /// as static configuration), queries broadcast to everyone.
  bool flat = false;
};

/// One simulated cluster member: cohesion endpoint + optional zone router
/// sharing a single network mailbox.
class MegaNode : public SimHost {
 public:
  MegaNode(NodeId id, std::uint32_t zone, const core::CohesionConfig& base,
           SimNetwork& net, Simulator& sim)
      : id_(id), net_(net), sim_(sim), cohesion_(id, zoned(base, zone), sender()) {
    cohesion_.set_digest_provider([this] {
      core::RegistryDigest d;
      d.components = components;
      d.cpu_load = cpu_load;
      return d;
    });
    if (zone != 0) {
      core::ZoneConfig zc;
      zc.zone = zone;
      zc.hello_interval = base.heartbeat;
      zc.publish_interval = base.heartbeat * 2;
      zc.suspect_after = base.suspect_after;
      zc.resolve_timeout = base.query_timeout;
      router_ = std::make_unique<core::ZoneRouter>(id, zc, cohesion_, sender(),
                                                   &cohesion_.metrics());
    }
  }

  void on_message(NodeId from, const Bytes& payload) override {
    (void)from;
    if (!alive) return;
    auto m = core::ProtoMessage::decode(payload);
    if (!m.ok()) return;
    if (query_msgs != nullptr && is_query_kind(m->kind)) {
      *query_msgs += 1;
      *query_bytes += payload.size();
    }
    if (router_ && core::ZoneRouter::handles(*m))
      router_->on_message(*m, sim_.now());
    else
      cohesion_.on_message(*m, sim_.now());
  }

  /// True for frames on the query path (resolves, relays, replies) as
  /// opposed to background control plane (heartbeats, hellos, publishes,
  /// topology): the benches separate per-query from steady-state cost.
  [[nodiscard]] static bool is_query_kind(const std::string& k) {
    if (k.size() > 2 && k[0] == 'q' && k[1] == '_') return true;
    return k == "z_resolve" || k == "z_fwd" || k == "z_hits" ||
           k == "z_glob" || k == "z_scan";
  }

  void tick(TimePoint now) {
    cohesion_.on_tick(now);
    if (router_) router_->on_tick(now);
  }

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  core::CohesionNode& cohesion() noexcept { return cohesion_; }
  core::ZoneRouter* router() noexcept { return router_.get(); }

  std::vector<core::ComponentSummary> components;
  double cpu_load = 0;
  bool alive = true;
  std::uint64_t incarnation = 1;
  // Cluster-wide query-path accounting (shared accumulators, see above).
  std::uint64_t* query_msgs = nullptr;
  std::uint64_t* query_bytes = nullptr;

 private:
  [[nodiscard]] static core::CohesionConfig zoned(core::CohesionConfig cfg,
                                                  std::uint32_t zone) {
    cfg.zone = zone;
    return cfg;
  }
  [[nodiscard]] core::CohesionNode::Sender sender() {
    return [this](NodeId to, const core::ProtoMessage& m) {
      net_.send(id_, to, m.encode());
    };
  }

  NodeId id_;
  SimNetwork& net_;
  Simulator& sim_;
  core::CohesionNode cohesion_;
  std::unique_ptr<core::ZoneRouter> router_;
};

class MegaCluster {
 public:
  /// Fixed capacity (felis-style): the node table never grows, so ids,
  /// zone ranges and bootstrap tables are all computable at construction.
  static constexpr std::size_t kMaxNodes = 2048;

  explicit MegaCluster(MegaClusterConfig cfg)
      : cfg_(std::move(cfg)), net_(sim_, cfg_.seed) {
    assert(cfg_.nodes >= 1 && cfg_.nodes <= kMaxNodes);
    if (cfg_.flat) {
      cfg_.zones = 0;
      cfg_.cohesion.mode = core::CohesionConfig::Mode::flat_query;
      // The roster is static configuration; no keep-alive churn. Queries,
      // not liveness traffic, are what the flat baseline measures.
      cfg_.cohesion.heartbeat = seconds(36000);
      cfg_.cohesion.query_timeout = seconds(30);
    }
    zone_size_ = cfg_.zones > 1
                     ? (cfg_.nodes + cfg_.zones - 1) / cfg_.zones
                     : cfg_.nodes;
    net_.set_latency_fn([this](NodeId a, NodeId b) {
      return zone_of_id(a) == zone_of_id(b) ? cfg_.intra_zone_latency
                                            : cfg_.inter_zone_latency;
    });
  }

  // ---------------------------------------------------------------- build
  /// Construct and join all nodes (batched), then let the trees settle.
  void build() {
    std::vector<std::pair<std::uint32_t, NodeId>> bootstraps;
    for (std::uint32_t z = 1; z <= zone_count(); ++z)
      bootstraps.emplace_back(z, NodeId{(z - 1) * zone_size_ + 1});
    for (std::size_t i = 0; i < cfg_.nodes; ++i) {
      const NodeId id{i + 1};
      const std::uint32_t zone = cfg_.flat ? 0 : zone_of_index(i);
      auto node = std::make_unique<MegaNode>(id, zone, cfg_.cohesion, net_, sim_);
      MegaNode& ref = *node;
      ref.query_msgs = &query_msgs_;
      ref.query_bytes = &query_bytes_;
      ref.cohesion().set_transition_hook([this, id](const std::string& what) {
        log_event(id, what);
      });
      if (ref.router()) ref.router()->set_zone_bootstraps(bootstraps);
      net_.attach(id, node.get());
      nodes_.push_back(std::move(node));
      // Stagger tick phases deterministically so 2000 timers don't all
      // fire in one simulator instant.
      const Duration period = tick_period();
      const Duration phase =
          static_cast<Duration>((i * 211) % static_cast<std::uint64_t>(period));
      sim_.schedule_after(period + phase,
                          [this, &ref, period] { tick(ref, period); });
    }
    if (cfg_.flat) {
      seed_flat_rosters();
      run_for(cfg_.cohesion.query_timeout);
      return;
    }
    // Zone founders first, then everyone else in join batches.
    for (std::size_t i = 0; i < cfg_.nodes; ++i) {
      MegaNode& n = *nodes_[i];
      if (is_zone_founder(i)) {
        sim_.schedule_after(milliseconds(1) * static_cast<Duration>(zone_of_index(i)),
                            [this, &n] { n.cohesion().start_as_first(sim_.now()); });
        continue;
      }
      const NodeId bootstrap{(zone_of_index(i) - 1) * zone_size_ + 1};
      const std::size_t batch = i / cfg_.join_batch;
      const Duration at = seconds(1) +
                          cfg_.join_batch_gap * static_cast<Duration>(batch) +
                          cfg_.join_stagger *
                              static_cast<Duration>(i % cfg_.join_batch);
      sim_.schedule_after(at, [this, &n, bootstrap] {
        n.cohesion().start_joining(bootstrap, sim_.now());
      });
    }
    const std::size_t batches = cfg_.nodes / std::max<std::size_t>(1, cfg_.join_batch);
    run_for(seconds(1) + cfg_.join_batch_gap * static_cast<Duration>(batches + 1) +
            cfg_.cohesion.heartbeat * 8);
  }

  // ------------------------------------------------------------- topology
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::uint32_t zone_count() const noexcept {
    return cfg_.flat || cfg_.zones <= 1
               ? 1
               : static_cast<std::uint32_t>(
                     (cfg_.nodes + zone_size_ - 1) / zone_size_);
  }
  [[nodiscard]] std::uint32_t zone_of_index(std::size_t i) const noexcept {
    return static_cast<std::uint32_t>(i / zone_size_) + 1;
  }
  [[nodiscard]] std::uint32_t zone_of_id(NodeId id) const noexcept {
    return id.value == 0 || cfg_.flat
               ? 0
               : zone_of_index(static_cast<std::size_t>(id.value - 1));
  }
  [[nodiscard]] bool is_zone_founder(std::size_t i) const noexcept {
    return i % zone_size_ == 0;
  }
  MegaNode& node(std::size_t i) { return *nodes_[i]; }
  /// Indices of one zone's members (1-based zone id).
  [[nodiscard]] std::vector<std::size_t> zone_members(std::uint32_t z) const {
    std::vector<std::size_t> out;
    for (std::size_t i = (z - 1) * zone_size_;
         i < std::min(cfg_.nodes, z * zone_size_); ++i)
      out.push_back(i);
    return out;
  }
  /// Current root of zone `z` (alive + is_root), or npos while headless.
  [[nodiscard]] std::size_t zone_root_index(std::uint32_t z) const {
    for (std::size_t i : zone_members(z))
      if (nodes_[i]->alive && nodes_[i]->cohesion().is_root()) return i;
    return static_cast<std::size_t>(-1);
  }

  Simulator& sim() noexcept { return sim_; }
  SimNetwork& net() noexcept { return net_; }
  const MegaClusterConfig& config() const noexcept { return cfg_; }

  /// Query-path traffic (delivered resolve/relay/reply frames, by kind) --
  /// immune to background heartbeat noise, unlike raw network deltas.
  [[nodiscard]] std::uint64_t query_msgs() const noexcept { return query_msgs_; }
  [[nodiscard]] std::uint64_t query_bytes() const noexcept { return query_bytes_; }
  void reset_query_stats() noexcept { query_msgs_ = query_bytes_ = 0; }

  void run_for(Duration d) { sim_.run_until(sim_.now() + d); }

  // ------------------------------------------------------------- workload
  void install(std::size_t i, const std::string& name, Version v = {1, 0, 0}) {
    nodes_[i]->components.push_back({name, v, true, 0.0});
  }

  /// Synchronous sharded resolve from node `i` (zoned mode).
  core::ZoneResolveResult resolve(std::size_t i, const std::string& pattern) {
    core::ZoneResolveResult result;
    bool done = false;
    nodes_[i]->router()->resolve(pattern, sim_.now(),
                                 [&](core::ZoneResolveResult r) {
                                   result = std::move(r);
                                   done = true;
                                 });
    drive(done);
    return result;
  }

  /// Synchronous cohesion query from node `i` (flat baseline / in-zone).
  core::QueryResult query(std::size_t i, const core::ComponentQuery& q) {
    core::QueryResult result;
    bool done = false;
    nodes_[i]->cohesion().query_ex(q, sim_.now(), [&](core::QueryResult r) {
      result = std::move(r);
      done = true;
    });
    drive(done);
    return result;
  }

  // ---------------------------------------------------------------- chaos
  void crash(std::size_t i) {
    MegaNode& n = *nodes_[i];
    if (!n.alive) return;
    n.alive = false;
    net_.detach(n.id());
    log_event(n.id(), "crash");
  }

  void restart(std::size_t i) {
    MegaNode& n = *nodes_[i];
    if (n.alive) return;
    n.alive = true;
    n.incarnation += 1;
    n.cohesion().set_incarnation(n.incarnation);
    n.cohesion().restart(sim_.now());
    net_.set_incarnation(n.id(), n.incarnation);
    net_.attach(n.id(), &n);
    log_event(n.id(), "restart");
    // Rejoin through the lowest-id alive member of the node's own zone
    // (static bootstrap preference, falling back past dead founders).
    for (std::size_t j : zone_members(zone_of_index(i))) {
      if (j == i || !nodes_[j]->alive) continue;
      n.cohesion().start_joining(nodes_[j]->id(), sim_.now());
      return;
    }
    n.cohesion().start_as_first(sim_.now());  // alone in the zone
  }

  /// Arm a seeded churn timetable. Event times are relative to *now* (the
  /// arming instant), so the same schedule replays identically no matter
  /// how long bring-up took.
  void apply_churn(const fault::CrashSchedule& schedule) {
    for (const fault::CrashEvent& ev : schedule.events) {
      const std::size_t i = static_cast<std::size_t>(ev.node.value - 1);
      if (i >= nodes_.size()) continue;
      sim_.schedule_after(ev.at, [this, i] { crash(i); });
      if (ev.restart_after > 0)
        sim_.schedule_after(ev.at + ev.restart_after,
                            [this, i] { restart(i); });
    }
  }

  /// Zone-aligned k-way partition: zones in different groups are cut off
  /// from each other.
  void partition_zones(const std::vector<std::vector<std::uint32_t>>& groups) {
    std::vector<std::set<NodeId>> node_groups;
    std::string desc;
    for (const auto& zs : groups) {
      std::set<NodeId> g;
      if (!desc.empty()) desc += '|';
      for (std::uint32_t z : zs) {
        desc += std::to_string(z) + ',';
        for (std::size_t i : zone_members(z)) g.insert(nodes_[i]->id());
      }
      node_groups.push_back(std::move(g));
    }
    net_.partition_groups(std::move(node_groups));
    log_event(NodeId{0}, "partition:" + desc);
  }

  void heal() {
    net_.heal_partition();
    log_event(NodeId{0}, "heal");
  }

  // ------------------------------------------------------------ event log
  /// Every protocol transition, crash, restart, partition and heal with
  /// its virtual timestamp: the replay-determinism tests compare this log
  /// byte-for-byte across same-seed runs.
  [[nodiscard]] const std::vector<std::string>& event_log() const noexcept {
    return events_;
  }
  [[nodiscard]] std::string log_digest() const {
    std::string out;
    for (const auto& e : events_) {
      out += e;
      out += '\n';
    }
    return out;
  }

 private:
  [[nodiscard]] Duration tick_period() const noexcept {
    // Flat mode's huge heartbeat would stall ticks entirely; query
    // deadlines still need periodic service.
    return cfg_.flat ? seconds(5) : cfg_.cohesion.heartbeat / 2;
  }

  void tick(MegaNode& n, Duration period) {
    if (n.alive) n.tick(sim_.now());
    // The chain outlives crashes so a restarted node resumes ticking.
    sim_.schedule_after(period, [this, &n, period] { tick(n, period); });
  }

  void drive(bool& done) {
    int guard = 0;
    while (!done && guard++ < 2000000) {
      if (!sim_.step()) run_for(tick_period());
    }
  }

  void seed_flat_rosters() {
    // The roster is part of the static cluster config (felis-style): hand
    // every node the full member list directly instead of paying an
    // O(N^2) join/gossip storm the experiment doesn't want to measure.
    orb::CdrWriter w;
    w.begin_encapsulation();
    w.write_ulong(static_cast<std::uint32_t>(cfg_.nodes));
    for (std::size_t i = 0; i < cfg_.nodes; ++i)
      w.write_ulonglong(nodes_[i]->id().value);
    core::ProtoMessage roster;
    roster.kind = "roster";
    roster.sender = nodes_[0]->id();
    roster.blob = w.take();
    for (std::size_t i = 0; i < cfg_.nodes; ++i)
      nodes_[i]->cohesion().on_message(roster, sim_.now());
  }

  void log_event(NodeId n, const std::string& what) {
    events_.push_back("t=" + std::to_string(sim_.now()) +
                      " n=" + std::to_string(n.value) + " " + what);
  }

  MegaClusterConfig cfg_;
  Simulator sim_;
  SimNetwork net_;
  std::size_t zone_size_ = 1;
  std::vector<std::unique_ptr<MegaNode>> nodes_;
  std::vector<std::string> events_;
  std::uint64_t query_msgs_ = 0;
  std::uint64_t query_bytes_ = 0;
};

}  // namespace clc::sim
