#include "sim/network.hpp"

namespace clc::sim {

void SimNetwork::attach(NodeId id, SimHost* host) { hosts_[id] = host; }

void SimNetwork::detach(NodeId id) { hosts_.erase(id); }

void SimNetwork::partition(std::set<NodeId> side_a, std::set<NodeId> side_b) {
  partition_a_ = std::move(side_a);
  partition_b_ = std::move(side_b);
}

void SimNetwork::partition_groups(std::vector<std::set<NodeId>> groups) {
  group_of_.clear();
  int idx = 0;
  for (const auto& g : groups) {
    for (NodeId n : g) group_of_[n] = idx;
    ++idx;
  }
}

void SimNetwork::heal_partition() {
  partition_a_.clear();
  partition_b_.clear();
  group_of_.clear();
}

void SimNetwork::apply_schedule(const fault::PartitionSchedule& schedule) {
  for (const fault::PartitionEvent& ev : schedule.events) {
    sim_.schedule_at(ev.at, [this, cuts = ev.cuts]() {
      for (const fault::LinkCut& c : cuts) cut_link(c.from, c.to);
    });
    if (ev.heal_after > 0)
      sim_.schedule_at(ev.at + ev.heal_after, [this, cuts = ev.cuts]() {
        for (const fault::LinkCut& c : cuts) restore_link(c.from, c.to);
      });
  }
}

bool SimNetwork::blocked(NodeId a, NodeId b) const {
  // Directed cuts only block their own direction (a→b may be down while
  // b→a still delivers).
  if (cut_links_.count({a, b}) != 0) return true;
  if (!group_of_.empty()) {
    const auto ga = group_of_.find(a);
    const auto gb = group_of_.find(b);
    if (ga != group_of_.end() && gb != group_of_.end() &&
        ga->second != gb->second)
      return true;
  }
  if (partition_a_.empty() || partition_b_.empty()) return false;
  const bool a_in_a = partition_a_.count(a) != 0;
  const bool a_in_b = partition_b_.count(a) != 0;
  const bool b_in_a = partition_a_.count(b) != 0;
  const bool b_in_b = partition_b_.count(b) != 0;
  return (a_in_a && b_in_b) || (a_in_b && b_in_a);
}

void SimNetwork::set_node_degradation(NodeId id, double service_factor,
                                      Duration outbound_delay) {
  if (service_factor <= 1.0 && outbound_delay <= 0) {
    clear_node_degradation(id);
    return;
  }
  degradations_[id] = {service_factor < 1.0 ? 1.0 : service_factor,
                       outbound_delay < 0 ? 0 : outbound_delay};
}

void SimNetwork::clear_node_degradation(NodeId id) { degradations_.erase(id); }

void SimNetwork::stall_node(NodeId id, Duration duration) {
  if (duration <= 0) return;
  const TimePoint until = sim_.now() + duration;
  TimePoint& cur = stalled_until_[id];
  if (until > cur) cur = until;
}

void SimNetwork::apply_gray_schedule(const fault::GraySchedule& schedule) {
  for (const fault::GrayEvent& ev : schedule.events) {
    sim_.schedule_at(ev.at, [this, ev]() {
      set_node_degradation(ev.node, ev.service_factor, ev.outbound_delay);
    });
    if (ev.stall_period > 0 && ev.stall_duration > 0) {
      // The stall instants are precomputed from the event alone, so the
      // timetable stays a pure function of the schedule.
      const TimePoint end =
          ev.duration > 0 ? ev.at + ev.duration : ev.at + ev.stall_period + 1;
      for (TimePoint t = ev.at; t < end; t += ev.stall_period)
        sim_.schedule_at(t, [this, node = ev.node,
                             d = ev.stall_duration]() { stall_node(node, d); });
    }
    if (ev.duration > 0)
      sim_.schedule_at(ev.at + ev.duration,
                       [this, node = ev.node]() {
                         clear_node_degradation(node);
                       });
  }
}

Duration SimNetwork::delivery_delay(NodeId from, NodeId to,
                                    std::size_t bytes) {
  Duration d = latency_fn_ ? latency_fn_(from, to) : model_.base_latency;
  if (model_.jitter > 0)
    d += static_cast<Duration>(
        rng_.next_below(static_cast<std::uint64_t>(model_.jitter) + 1));
  if (model_.bytes_per_second > 0)
    d += static_cast<Duration>(static_cast<double>(bytes) /
                               model_.bytes_per_second * 1e6);
  // Gray sender: its frames leave late (service-rate degradation plus the
  // one-way asymmetric path penalty). The reverse direction is untouched.
  if (auto it = degradations_.find(from); it != degradations_.end())
    d = static_cast<Duration>(static_cast<double>(d) *
                              it->second.service_factor) +
        it->second.outbound_delay;
  return d;
}

void SimNetwork::send(NodeId from, NodeId to, Bytes payload) {
  send(from, to, std::move(payload), nullptr);
}

void SimNetwork::send(NodeId from, NodeId to, Bytes payload,
                      DeliveryCallback on_delivery) {
  messages_sent_->inc();
  bytes_sent_->add(payload.size());
  per_node_bytes_[from] += payload.size();
  if (blocked(from, to) || rng_.chance(model_.drop_probability)) {
    messages_dropped_->inc();
    if (on_delivery) on_delivery(false);
    return;
  }
  Duration delay = delivery_delay(from, to, payload.size());
  // Frames are addressed to the destination's *current* incarnation; a
  // restart while they are in flight invalidates them (see deliver()).
  const std::uint64_t to_inc = incarnation_of(to);
  if (fault_ != nullptr && fault_->active()) {
    const fault::FaultDecision d = fault_->next(payload.size());
    // A reset has no connection to kill here; the message is simply lost.
    if (d.drop || d.reset) {
      messages_dropped_->inc();
      if (on_delivery) on_delivery(false);
      return;
    }
    delay += d.delay;  // extra latency; lets later messages overtake
    fault::FaultInjector::corrupt(payload, d);
    if (d.duplicate) {
      // The duplicate is invisible to the sender: no second callback.
      sim_.schedule_after(delay, [this, from, to, to_inc, data = payload]() mutable {
        deliver_or_defer(from, to, to_inc, std::move(data), nullptr);
      });
    }
  }
  sim_.schedule_after(
      delay, [this, from, to, to_inc, data = std::move(payload),
              cb = std::move(on_delivery)]() mutable {
        deliver_or_defer(from, to, to_inc, std::move(data), std::move(cb));
      });
}

void SimNetwork::deliver_or_defer(NodeId from, NodeId to,
                                  std::uint64_t to_incarnation, Bytes payload,
                                  DeliveryCallback cb) {
  // Stuck worker: the frame sits in the destination's queue until the
  // stall lifts, then delivers (arrival order is preserved because the
  // simulator's event queue is FIFO within one instant).
  if (auto it = stalled_until_.find(to); it != stalled_until_.end()) {
    const TimePoint until = it->second;
    if (until > sim_.now()) {
      sim_.schedule_at(until, [this, from, to, to_incarnation,
                               data = std::move(payload),
                               cb = std::move(cb)]() mutable {
        deliver_or_defer(from, to, to_incarnation, std::move(data),
                         std::move(cb));
      });
      return;
    }
    stalled_until_.erase(it);
  }
  const bool delivered = deliver(from, to, to_incarnation, payload);
  if (cb) cb(delivered);
}

bool SimNetwork::deliver(NodeId from, NodeId to, std::uint64_t to_incarnation,
                         const Bytes& payload) {
  // Re-check at delivery time: the destination may have crashed or a
  // partition may have appeared while the message was in flight.
  auto it = hosts_.find(to);
  if (it == hosts_.end() || blocked(from, to)) {
    messages_dropped_->inc();
    return false;
  }
  // The destination restarted while this frame was in flight (a healed
  // partition can release long-delayed pre-crash traffic): the frame was
  // addressed to the old incarnation and must not reach the new one.
  if (incarnation_of(to) != to_incarnation) {
    stale_incarnation_dropped_->inc();
    messages_dropped_->inc();
    return false;
  }
  messages_delivered_->inc();
  it->second->on_message(from, payload);
  return true;
}

}  // namespace clc::sim
