// Result<T>: lightweight expected-style error handling used across CORBA-LC.
//
// The model layers (repository, registry, deployment) report recoverable
// conditions -- "component not found", "node unreachable", "version
// conflict" -- as values rather than exceptions, because most of them flow
// across simulated network boundaries where an exception cannot propagate.
// Programming errors (violated preconditions) still throw.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace clc {

/// Error category codes shared by all CORBA-LC subsystems.
enum class Errc {
  ok = 0,
  invalid_argument,
  parse_error,
  not_found,
  already_exists,
  version_conflict,
  unsupported,
  io_error,
  corrupt_data,
  signature_mismatch,
  timeout,
  unreachable,
  refused,
  no_resources,
  bad_state,
  remote_exception,
  cancelled,
  overloaded,  // server shed the call (admission control); retry after backoff
};

/// Human-readable name of an error code (stable, used in logs and tests).
constexpr const char* errc_name(Errc c) noexcept {
  switch (c) {
    case Errc::ok: return "ok";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::parse_error: return "parse_error";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::version_conflict: return "version_conflict";
    case Errc::unsupported: return "unsupported";
    case Errc::io_error: return "io_error";
    case Errc::corrupt_data: return "corrupt_data";
    case Errc::signature_mismatch: return "signature_mismatch";
    case Errc::timeout: return "timeout";
    case Errc::unreachable: return "unreachable";
    case Errc::refused: return "refused";
    case Errc::no_resources: return "no_resources";
    case Errc::bad_state: return "bad_state";
    case Errc::remote_exception: return "remote_exception";
    case Errc::cancelled: return "cancelled";
    case Errc::overloaded: return "overloaded";
  }
  return "unknown";
}

/// Inverse of errc_name; unknown names fall back to `fallback`. Used to
/// recover the original category of a system exception crossing the wire
/// (the wire carries the errc name).
constexpr Errc errc_from_name(std::string_view name,
                              Errc fallback = Errc::remote_exception) noexcept {
  for (int c = 0; c <= static_cast<int>(Errc::overloaded); ++c) {
    if (name == errc_name(static_cast<Errc>(c))) return static_cast<Errc>(c);
  }
  return fallback;
}

/// An error: a category code plus a context message.
struct Error {
  Errc code = Errc::ok;
  std::string message;

  Error() = default;
  Error(Errc c, std::string msg) : code(c), message(std::move(msg)) {}

  [[nodiscard]] std::string to_string() const {
    std::string s = errc_name(code);
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

/// Thrown by Result::value() when the result holds an error.
class BadResultAccess : public std::runtime_error {
 public:
  explicit BadResultAccess(const Error& e)
      : std::runtime_error("bad Result access: " + e.to_string()), error_(e) {}
  [[nodiscard]] const Error& error() const noexcept { return error_; }

 private:
  Error error_;
};

/// Value-or-error. `Result<void>` is supported via the specialization below.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)
  Result(Errc code, std::string msg) : data_(Error{code, std::move(msg)}) {}

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw BadResultAccess(error());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw BadResultAccess(error());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw BadResultAccess(error());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Map the value through `f` if ok, else propagate the error.
  template <typename F>
  auto map(F&& f) const -> Result<decltype(f(std::declval<const T&>()))> {
    if (!ok()) return error();
    return f(std::get<T>(data_));
  }

 private:
  std::variant<T, Error> data_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}     // NOLINT(google-explicit-constructor)
  Result(Errc code, std::string msg) : error_(Error{code, std::move(msg)}) {}

  [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  void value() const {
    if (!ok()) throw BadResultAccess(*error_);
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

/// Convenience for success on Result<void>.
inline Result<void> ok_result() { return {}; }

}  // namespace clc
