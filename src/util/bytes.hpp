// Byte-buffer helpers shared by marshaling, packaging and transports.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace clc {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encode a byte span as lowercase hex ("deadbeef").
std::string to_hex(BytesView data);

/// Decode lowercase/uppercase hex; returns empty vector on malformed input
/// (odd length or non-hex characters).
Bytes from_hex(std::string_view hex);

/// Copy a string's bytes into a Bytes buffer.
Bytes bytes_of(std::string_view s);

/// Interpret a byte buffer as text (no validation).
std::string string_of(BytesView data);

/// FNV-1a 64-bit hash, used for cheap content digests inside the simulator
/// (the packaging layer uses real SHA-256 instead).
std::uint64_t fnv1a64(BytesView data) noexcept;

}  // namespace clc
