#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace clc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::off};
std::mutex g_sink_mutex;
std::string* g_capture = nullptr;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_capture(std::string* sink) {
  std::lock_guard lock(g_sink_mutex);
  g_capture = sink;
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard lock(g_sink_mutex);
  if (g_capture != nullptr) {
    *g_capture += "[";
    *g_capture += level_name(level);
    *g_capture += "] ";
    *g_capture += component;
    *g_capture += ": ";
    *g_capture += message;
    *g_capture += "\n";
  } else {
    std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
                 message.c_str());
  }
}

}  // namespace clc
