// Component versions and version constraints.
//
// CORBA-LC requirement 6 (automatic dependency management) needs components
// to declare dependencies like "needs codec >= 2.1": the Distributed
// Registry matches installed versions against such constraints when
// resolving a query network-wide.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace clc {

/// major.minor.patch semantic version.
struct Version {
  std::uint32_t major = 0;
  std::uint32_t minor = 0;
  std::uint32_t patch = 0;

  auto operator<=>(const Version&) const = default;

  [[nodiscard]] std::string to_string() const;
  static Result<Version> parse(std::string_view text);
};

/// One relational constraint against a version, e.g. ">=1.2.0".
/// Supported operators: ==, !=, <, <=, >, >=, ~ (same major, at least this).
struct VersionConstraint {
  enum class Op { eq, ne, lt, le, gt, ge, compatible, any };

  Op op = Op::any;
  Version bound;

  [[nodiscard]] bool matches(const Version& v) const noexcept;
  [[nodiscard]] std::string to_string() const;

  /// Parse "any", ">=1.2", "~2.0.1", "==3.1.4", ...
  static Result<VersionConstraint> parse(std::string_view text);
};

}  // namespace clc
