// Small string utilities (no locale, ASCII semantics).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace clc {

/// Split on a single separator character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Case-sensitive glob match supporting '*' and '?' (used by component
/// queries, e.g. name pattern "video.*").
bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace clc
