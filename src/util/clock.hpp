// Time abstraction.
//
// The cohesion/registry protocols are written against Clock so the same
// code runs under the real wall clock (threaded ORB runtime) and under the
// discrete-event simulator's virtual clock. Durations are in microseconds
// kept as integers to keep the simulator deterministic.
#pragma once

#include <chrono>
#include <cstdint>

namespace clc {

/// Microseconds since an arbitrary epoch.
using TimePoint = std::int64_t;
/// Microseconds.
using Duration = std::int64_t;

constexpr Duration microseconds(std::int64_t v) noexcept { return v; }
constexpr Duration milliseconds(std::int64_t v) noexcept { return v * 1000; }
constexpr Duration seconds(std::int64_t v) noexcept { return v * 1000000; }

constexpr double to_seconds(Duration d) noexcept {
  return static_cast<double>(d) / 1e6;
}

class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual TimePoint now() const = 0;
};

/// Real time, anchored to steady_clock.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now() const override {
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::microseconds>(t).count();
  }
};

/// Manually advanced time, owned by the simulator or by tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = 0) : now_(start) {}
  [[nodiscard]] TimePoint now() const override { return now_; }
  void advance(Duration d) { now_ += d; }
  void set(TimePoint t) { now_ = t; }

 private:
  TimePoint now_;
};

}  // namespace clc
