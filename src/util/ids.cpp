#include "util/ids.hpp"

#include "util/bytes.hpp"

namespace clc {

std::string Uuid::to_string() const {
  // 32 hex chars, hi then lo, lowercase, no dashes (simplifies parsing and
  // keeps marshaled size predictable).
  char buf[33];
  static const char* digits = "0123456789abcdef";
  for (int i = 0; i < 16; ++i) buf[i] = digits[(hi >> (60 - 4 * i)) & 0xf];
  for (int i = 0; i < 16; ++i) buf[16 + i] = digits[(lo >> (60 - 4 * i)) & 0xf];
  buf[32] = '\0';
  return std::string(buf);
}

Uuid Uuid::parse(const std::string& text) {
  if (text.size() != 32) return {};
  Uuid u;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (int i = 0; i < 16; ++i) {
    const int v = nibble(text[i]);
    if (v < 0) return {};
    u.hi = (u.hi << 4) | static_cast<std::uint64_t>(v);
  }
  for (int i = 16; i < 32; ++i) {
    const int v = nibble(text[i]);
    if (v < 0) return {};
    u.lo = (u.lo << 4) | static_cast<std::uint64_t>(v);
  }
  return u;
}

Uuid Uuid::random(Rng& rng) {
  Uuid u;
  do {
    u.hi = rng.next_u64();
    u.lo = rng.next_u64();
  } while (u.is_nil());
  return u;
}

}  // namespace clc
