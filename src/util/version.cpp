#include "util/version.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace clc {

std::string Version::to_string() const {
  return std::to_string(major) + "." + std::to_string(minor) + "." +
         std::to_string(patch);
}

Result<Version> Version::parse(std::string_view text) {
  text = trim(text);
  if (text.empty()) return Error{Errc::parse_error, "empty version"};
  Version v;
  std::uint32_t* fields[3] = {&v.major, &v.minor, &v.patch};
  std::size_t field = 0;
  std::uint64_t acc = 0;
  bool have_digit = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      acc = acc * 10 + static_cast<std::uint64_t>(c - '0');
      if (acc > 0xffffffffULL)
        return Error{Errc::parse_error, "version component overflow"};
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit || field >= 2)
        return Error{Errc::parse_error,
                     "malformed version: " + std::string(text)};
      *fields[field++] = static_cast<std::uint32_t>(acc);
      acc = 0;
      have_digit = false;
    } else {
      return Error{Errc::parse_error,
                   "invalid character in version: " + std::string(text)};
    }
  }
  if (!have_digit)
    return Error{Errc::parse_error, "malformed version: " + std::string(text)};
  *fields[field] = static_cast<std::uint32_t>(acc);
  return v;
}

bool VersionConstraint::matches(const Version& v) const noexcept {
  switch (op) {
    case Op::any: return true;
    case Op::eq: return v == bound;
    case Op::ne: return v != bound;
    case Op::lt: return v < bound;
    case Op::le: return v <= bound;
    case Op::gt: return v > bound;
    case Op::ge: return v >= bound;
    case Op::compatible: return v.major == bound.major && v >= bound;
  }
  return false;
}

std::string VersionConstraint::to_string() const {
  switch (op) {
    case Op::any: return "any";
    case Op::eq: return "==" + bound.to_string();
    case Op::ne: return "!=" + bound.to_string();
    case Op::lt: return "<" + bound.to_string();
    case Op::le: return "<=" + bound.to_string();
    case Op::gt: return ">" + bound.to_string();
    case Op::ge: return ">=" + bound.to_string();
    case Op::compatible: return "~" + bound.to_string();
  }
  return "?";
}

Result<VersionConstraint> VersionConstraint::parse(std::string_view text) {
  text = trim(text);
  if (text.empty() || text == "any" || text == "*")
    return VersionConstraint{};  // Op::any

  VersionConstraint c;
  if (starts_with(text, "==")) {
    c.op = Op::eq;
    text.remove_prefix(2);
  } else if (starts_with(text, "!=")) {
    c.op = Op::ne;
    text.remove_prefix(2);
  } else if (starts_with(text, "<=")) {
    c.op = Op::le;
    text.remove_prefix(2);
  } else if (starts_with(text, ">=")) {
    c.op = Op::ge;
    text.remove_prefix(2);
  } else if (starts_with(text, "<")) {
    c.op = Op::lt;
    text.remove_prefix(1);
  } else if (starts_with(text, ">")) {
    c.op = Op::gt;
    text.remove_prefix(1);
  } else if (starts_with(text, "~")) {
    c.op = Op::compatible;
    text.remove_prefix(1);
  } else {
    // Bare version means exact match, mirroring OSD usage.
    c.op = Op::eq;
  }
  auto v = Version::parse(text);
  if (!v) return v.error();
  c.bound = *v;
  return c;
}

}  // namespace clc
