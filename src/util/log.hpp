// Minimal leveled logger.
//
// Silent at default level so tests and benches stay quiet; examples raise
// the level to narrate what the network is doing. Thread-safe (one mutex
// around the sink) because ORB transports log from worker threads.
#pragma once

#include <sstream>
#include <string>

namespace clc {

enum class LogLevel { trace = 0, debug, info, warn, error, off };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line through the global sink (stderr by default).
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Redirect log output into a string sink (tests); pass nullptr to restore
/// stderr.
void set_log_capture(std::string* sink);

namespace detail {
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogMessage() { log_line(level_, component_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace clc

#define CLC_LOG(level, component)                       \
  if (::clc::log_level() <= ::clc::LogLevel::level)     \
  ::clc::detail::LogMessage(::clc::LogLevel::level, (component))
