// Deterministic random number generation.
//
// Every stochastic decision in CORBA-LC (uuid generation, simulated latency
// jitter, churn schedules, workload generators) draws from an explicitly
// seeded Rng so simulator runs and property tests are reproducible.
// xoshiro256** with splitmix64 seeding; small, fast, good quality.
#pragma once

#include <cmath>
#include <cstdint>

namespace clc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the seed into the xoshiro state.
    auto next = [&seed]() noexcept {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Debiased via rejection on the top range.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return next_double() < p; }

  /// Exponentially distributed with the given mean (>0).
  double next_exponential(double mean) noexcept {
    // 1 - next_double() is in (0, 1], so the log argument is never zero.
    return -mean * std::log(1.0 - next_double());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace clc
