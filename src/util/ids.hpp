// Strongly-typed identifiers used throughout CORBA-LC.
//
// Node ids, object keys and instance ids cross (simulated) network
// boundaries, so they must be value types that marshal trivially. We use a
// 128-bit Uuid rendered as hex for global ids, and small tag-typed integers
// where ordering matters (e.g. MRM election picks the lowest NodeId).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "util/rng.hpp"

namespace clc {

/// 128-bit globally unique identifier (random, version-4 style).
struct Uuid {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  auto operator<=>(const Uuid&) const = default;

  [[nodiscard]] bool is_nil() const noexcept { return hi == 0 && lo == 0; }
  [[nodiscard]] std::string to_string() const;

  /// Parse the format produced by to_string(); returns nil Uuid on error.
  static Uuid parse(const std::string& text);
  /// Fresh random uuid from the given RNG (deterministic under the sim).
  static Uuid random(Rng& rng);
};

/// Tag-typed 64-bit id: NodeId, InstanceId, ... share representation but are
/// not interchangeable at compile time.
template <typename Tag>
struct TypedId {
  std::uint64_t value = 0;

  TypedId() = default;
  explicit constexpr TypedId(std::uint64_t v) : value(v) {}

  auto operator<=>(const TypedId&) const = default;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  [[nodiscard]] std::string to_string() const { return std::to_string(value); }
};

struct NodeIdTag {};
struct InstanceIdTag {};
struct RequestIdTag {};
struct ChannelIdTag {};

/// Identifies one node (host) in the logical network.
using NodeId = TypedId<NodeIdTag>;
/// Identifies one running component instance, unique network-wide.
using InstanceId = TypedId<InstanceIdTag>;
/// Correlates a request with its reply on a connection.
using RequestId = TypedId<RequestIdTag>;
/// Identifies one event channel.
using ChannelId = TypedId<ChannelIdTag>;

}  // namespace clc

template <>
struct std::hash<clc::Uuid> {
  std::size_t operator()(const clc::Uuid& u) const noexcept {
    return std::hash<std::uint64_t>{}(u.hi ^ (u.lo * 0x9e3779b97f4a7c15ULL));
  }
};

template <typename Tag>
struct std::hash<clc::TypedId<Tag>> {
  std::size_t operator()(const clc::TypedId<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
