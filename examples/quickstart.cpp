// Quickstart: the CORBA-LC essentials in one file.
//
//  1. Stand up a three-node logical network (one founds it, two join).
//  2. Install a component package on one node at run time.
//  3. Resolve it from another node: the Distributed Registry finds it, the
//     node binds remotely and invokes through the ORB.
//  4. Re-resolve with fetch-local binding: the package travels (the network
//     is the repository) and the component runs locally.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/node.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;

int main() {
  std::printf("== CORBA-LC quickstart ==\n\n");

  // A logical network: first node founds it, the rest join through it.
  CohesionConfig cohesion;
  cohesion.heartbeat = seconds(1);
  LocalNetwork net(cohesion);
  Node& alice = net.add_node();
  Node& bob = net.add_node();
  Node& carol = net.add_node();
  net.settle();
  std::printf("network formed: %zu nodes, root is node %llu\n",
              net.nodes().size(),
              static_cast<unsigned long long>(alice.id().value));

  // Install the calculator package on alice -- at run time, no restart.
  const Bytes package = testing::calculator_package();
  if (auto r = alice.install(package); !r.ok()) {
    std::printf("install failed: %s\n", r.error().to_string().c_str());
    return 1;
  }
  std::printf("installed demo.calculator %zu-byte package on node %llu\n",
              package.size(),
              static_cast<unsigned long long>(alice.id().value));
  net.settle();  // heartbeats carry the new registry digest to the MRMs

  // Bob resolves the component network-wide and uses it remotely.
  auto remote = bob.resolve("demo.calculator", VersionConstraint{},
                            Binding::remote);
  if (!remote.ok()) {
    std::printf("resolve failed: %s\n", remote.error().to_string().c_str());
    return 1;
  }
  std::printf("\nbob resolved demo.calculator -> instance on node %llu\n",
              static_cast<unsigned long long>(remote->host.value));
  auto sum = bob.orb().call(remote->primary, "add",
                            {orb::Value(std::int32_t{19}),
                             orb::Value(std::int32_t{23})});
  std::printf("bob calls add(19, 23) remotely = %s\n",
              sum.ok() ? sum->to_string().c_str()
                       : sum.error().to_string().c_str());

  // Carol wants it locally: fetch the package, install, instantiate.
  auto local = carol.resolve("demo.calculator", VersionConstraint{},
                             Binding::fetch_local);
  if (!local.ok()) {
    std::printf("fetch-local failed: %s\n", local.error().to_string().c_str());
    return 1;
  }
  std::printf("\ncarol fetched the package (host is now node %llu, %s)\n",
              static_cast<unsigned long long>(local->host.value),
              local->fetched ? "fetched over the network" : "already present");
  auto product = carol.orb().call(local->primary, "mul",
                                  {orb::Value(std::int32_t{6}),
                                   orb::Value(std::int32_t{7})});
  std::printf("carol calls mul(6, 7) locally = %s\n",
              product.ok() ? product->to_string().c_str()
                           : product.error().to_string().c_str());

  std::printf("\ncarol's repository now holds %zu component(s); done.\n",
              carol.repository().size());
  return 0;
}
