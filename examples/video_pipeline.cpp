// Video pipeline: the paper's motivating migration case (§2.4.3, §3.1).
//
//   "For example, a component decoding a MPEG video stream would work much
//    faster if it is installed locally." / "It allows bandwidth-limited
//    multimedia components (such as video stream decoding) to be migrated
//    and installed locally to minimize network load."
//
// A decoder component initially runs on the media server; the viewer node
// pulls decoded frames across the network. The network then migrates the
// decoder (binary + state) next to the viewer: the decoded-frame traffic
// becomes local and measured transport bytes collapse.
#include <cstdio>
#include <memory>

#include "core/node.hpp"
#include "pkg/package.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;

namespace {

/// A toy "MPEG decoder": decode(frame_no) returns an expanded frame
/// (decoded frames are ~20x larger than the compressed request -- that
/// asymmetry is what makes locality matter).
class DecoderInstance : public ComponentInstance {
 public:
  Result<void> initialize(InstanceContext& ctx) override {
    auto servant = std::make_shared<orb::DynamicServant>("vid::Decoder");
    servant->on("decode", [this](orb::ServerRequest& req) -> Result<void> {
      ++decoded_;
      const auto frame = static_cast<std::uint32_t>(*req.arg(0).to_int());
      Bytes out(4096);
      for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::uint8_t>(frame + i);
      req.set_result(orb::Value(std::move(out)));
      return {};
    });
    servant->on("decoded_count",
                [this](orb::ServerRequest& req) -> Result<void> {
      req.set_result(orb::Value(static_cast<std::int64_t>(decoded_)));
      return {};
    });
    auto r = ctx.provide_port("frames", std::move(servant));
    if (!r) return r.error();
    return {};
  }
  // The decoder keeps a frame counter -- state that must survive migration.
  Result<Bytes> externalize_state() override {
    orb::CdrWriter w;
    w.write_longlong(decoded_);
    return w.take();
  }
  Result<void> internalize_state(BytesView state) override {
    orb::CdrReader r(state);
    auto v = r.read_longlong();
    if (!v) return v.error();
    decoded_ = *v;
    return {};
  }

 private:
  std::int64_t decoded_ = 0;
};

Bytes decoder_package() {
  (void)ExecutorRegistry::global().register_symbol(
      "create_decoder", [] { return std::make_unique<DecoderInstance>(); });
  pkg::ComponentDescription d;
  d.name = "vid.mpeg.decoder";
  d.version = {2, 1, 0};
  d.summary = "MPEG stream decoder";
  d.mobile = true;
  d.qos.min_bandwidth_kbps = 4000;  // bandwidth-sensitive
  d.security.vendor = "vid";
  d.ports = {{pkg::PortKind::provides, "frames", "vid::Decoder"}};
  pkg::PackageBuilder b(d);
  b.set_idl(
      "module vid { typedef sequence<octet> Frame;"
      " interface Decoder { Frame decode(in long frame_no);"
      "                     long long decoded_count(); }; };");
  b.add_binary(clc::testing::binary_for("x86_64", "create_decoder", 60000));
  return b.build(bytes_of("vid-key")).value();
}

}  // namespace

int main() {
  std::printf("== Video pipeline: migrate the decoder next to the viewer ==\n\n");
  CohesionConfig cohesion;
  cohesion.heartbeat = seconds(1);
  LocalNetwork net(cohesion);
  Node& media_server = net.add_node();
  Node& viewer = net.add_node();
  net.settle();

  (void)media_server.install(decoder_package());
  net.settle();

  // Phase 1: viewer binds remotely and pulls 50 frames across the network.
  auto remote = viewer.resolve("vid.mpeg.decoder", VersionConstraint{},
                               Binding::remote);
  if (!remote.ok()) {
    std::printf("bind failed: %s\n", remote.error().to_string().c_str());
    return 1;
  }
  net.transport().reset_stats();
  for (int frame = 0; frame < 50; ++frame)
    (void)viewer.orb().call(remote->primary, "decode",
                            {orb::Value(std::int32_t{frame})});
  const auto remote_bytes = net.transport().stats().bytes;
  std::printf("remote decoding: 50 frames moved %llu bytes over the network\n",
              static_cast<unsigned long long>(remote_bytes));

  // Phase 2: the network migrates the decoder (binary + its state) to the
  // viewer node.
  const InstanceId decoder_id{
      static_cast<std::uint64_t>(std::stoull(remote->instance_token))};
  auto moved = media_server.migrate_instance(decoder_id, viewer.id());
  if (!moved.ok()) {
    std::printf("migration failed: %s\n", moved.error().to_string().c_str());
    return 1;
  }
  auto count = viewer.orb().call(moved->primary, "decoded_count");
  std::printf("\ndecoder migrated to node %llu; frame counter preserved: %s\n",
              static_cast<unsigned long long>(moved->host.value),
              count.ok() ? count->to_string().c_str() : "?");

  // Phase 3: same 50 frames, now decoded locally.
  net.transport().reset_stats();
  for (int frame = 0; frame < 50; ++frame)
    (void)viewer.orb().call(moved->primary, "decode",
                            {orb::Value(std::int32_t{frame})});
  const auto local_bytes = net.transport().stats().bytes;
  std::printf("local decoding: 50 frames moved %llu bytes over the network\n",
              static_cast<unsigned long long>(local_bytes));
  if (local_bytes < remote_bytes / 10) {
    std::printf("\n=> migration cut stream traffic by %.0fx, as the paper "
                "argues.\n",
                static_cast<double>(remote_bytes) /
                    static_cast<double>(local_bytes == 0 ? 1 : local_bytes));
  }
  std::printf("done.\n");
  return 0;
}
