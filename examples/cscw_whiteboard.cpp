// CSCW whiteboard: Figure 2 of the paper, realized.
//
//   "Figure 2 depicts the relationships between a CSCW application and
//    other components, including GUI components. The latter can be either
//    local or remote, and use the local Display component providing
//    painting functions. Each GUI component is in charge of a portion of
//    the window, and applications can change how the data is shown by
//    replacing the GUI components with others at run-time. Note that all
//    components required by the application can be remote, thus allowing
//    the use of thin clients such as PDAs."
//
// Components (GUI and logic share one component model -- requirement 7):
//   cscw.app         -- whiteboard application; emits cscw.Update events.
//   cscw.display     -- painting functions (one surface per participant).
//   cscw.gui.strokes -- GUI part: consumes updates, paints "stroke:" lines.
//   cscw.gui.fancy   -- replacement GUI part installed mid-session.
#include <cstdio>
#include <memory>

#include "core/node.hpp"
#include "pkg/package.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;

namespace {

constexpr const char* kCscwIdl = R"(
module cscw {
  interface Display {
    void draw(in string shape);
    string rendered();
  };
  interface GuiPart {
    string style();
  };
  interface App {
    void input(in string user, in string data);
    long updates();
  };
};
)";

class DisplayInstance : public ComponentInstance {
 public:
  Result<void> initialize(InstanceContext& ctx) override {
    auto servant = std::make_shared<orb::DynamicServant>("cscw::Display");
    servant->on("draw", [this](orb::ServerRequest& req) -> Result<void> {
      if (!content_.empty()) content_ += " | ";
      content_ += req.arg(0).as<std::string>();
      return {};
    });
    servant->on("rendered", [this](orb::ServerRequest& req) -> Result<void> {
      req.set_result(orb::Value(content_));
      return {};
    });
    auto r = ctx.provide_port("surface", std::move(servant));
    if (!r) return r.error();
    return {};
  }

 private:
  std::string content_;
};

/// GUI part: consumes cscw.Update events and paints them (in its style)
/// through its "display" uses-port.
class GuiPartInstance : public ComponentInstance {
 public:
  explicit GuiPartInstance(std::string style) : style_(std::move(style)) {}

  Result<void> initialize(InstanceContext& ctx) override {
    ctx_ = &ctx;
    auto servant = std::make_shared<orb::DynamicServant>("cscw::GuiPart");
    servant->on("style", [this](orb::ServerRequest& req) -> Result<void> {
      req.set_result(orb::Value(style_));
      return {};
    });
    if (auto r = ctx.provide_port("gui", std::move(servant)); !r)
      return r.error();
    return ctx.on_event("updates", [this](const orb::Value& event) {
      const auto& any = event.as<orb::AnyValue>();
      (void)ctx_->call_port(
          "display", "draw",
          {orb::Value(style_ + ":" + any.value->as<std::string>())});
    });
  }

 private:
  std::string style_;
  InstanceContext* ctx_ = nullptr;
};

/// The whiteboard application: a component that turns user input into
/// published update events ("applications are just special components").
class AppInstance : public ComponentInstance {
 public:
  Result<void> initialize(InstanceContext& ctx) override {
    ctx_ = &ctx;
    auto servant = std::make_shared<orb::DynamicServant>("cscw::App");
    servant->on("input", [this](orb::ServerRequest& req) -> Result<void> {
      ++updates_;
      return ctx_->emit("board", orb::Value(req.arg(0).as<std::string>() +
                                            " drew " +
                                            req.arg(1).as<std::string>()));
    });
    servant->on("updates", [this](orb::ServerRequest& req) -> Result<void> {
      req.set_result(orb::Value(static_cast<std::int32_t>(updates_)));
      return {};
    });
    auto r = ctx.provide_port("app", std::move(servant));
    if (!r) return r.error();
    return {};
  }

 private:
  InstanceContext* ctx_ = nullptr;
  int updates_ = 0;
};

Bytes make_package(const std::string& name, const char* entry,
                   InstanceFactory factory, std::vector<pkg::PortSpec> ports) {
  (void)ExecutorRegistry::global().register_symbol(entry, std::move(factory));
  pkg::ComponentDescription d;
  d.name = name;
  d.version = {1, 0, 0};
  d.security.vendor = "cscw";
  d.mobile = true;
  d.ports = std::move(ports);
  pkg::PackageBuilder b(d);
  b.set_idl(kCscwIdl);
  b.add_binary(clc::testing::binary_for("x86_64", entry));
  b.add_binary(clc::testing::binary_for("arm", entry));
  return b.build(bytes_of("cscw-key")).value();
}

InstanceId id_of(const BoundComponent& b) {
  return InstanceId{static_cast<std::uint64_t>(std::stoull(b.instance_token))};
}

}  // namespace

int main() {
  std::printf("== CSCW whiteboard (Figure 2) ==\n\n");
  CohesionConfig cohesion;
  cohesion.heartbeat = seconds(1);
  LocalNetwork net(cohesion);

  Node& host = net.add_node();  // hosts application + shared GUI parts
  NodeProfile pda_profile;
  pda_profile.arch = "arm";
  pda_profile.device = DeviceClass::pda;
  pda_profile.total_memory_kb = 16 * 1024;
  Node& pda = net.add_node(pda_profile);  // thin client
  net.settle();

  (void)host.install(make_package(
      "cscw.app", "create_cscw_app",
      [] { return std::make_unique<AppInstance>(); },
      {{pkg::PortKind::provides, "app", "cscw::App"},
       {pkg::PortKind::emits, "board", "cscw.Update"}}));
  (void)host.install(make_package(
      "cscw.display", "create_display",
      [] { return std::make_unique<DisplayInstance>(); },
      {{pkg::PortKind::provides, "surface", "cscw::Display"}}));
  (void)host.install(make_package(
      "cscw.gui.strokes", "create_gui_strokes",
      [] { return std::make_unique<GuiPartInstance>("strokes"); },
      {{pkg::PortKind::provides, "gui", "cscw::GuiPart"},
       {pkg::PortKind::uses, "display", "cscw::Display"},
       {pkg::PortKind::consumes, "updates", "cscw.Update"}}));
  net.settle();
  std::printf("host repository: %zu components; pda installs nothing "
              "(device class: pda)\n\n",
              host.repository().size());

  // Deploy: app + one display + one GUI part per participant. The PDA's GUI
  // part and display run remotely on the host -- it only holds references.
  auto app = host.acquire_local("cscw.app", VersionConstraint{});
  auto host_display = host.acquire_local("cscw.display", VersionConstraint{});
  auto host_gui = host.acquire_local("cscw.gui.strokes", VersionConstraint{});
  auto pda_display = pda.resolve("cscw.display", VersionConstraint{},
                                 Binding::remote);
  auto pda_gui = pda.resolve("cscw.gui.strokes", VersionConstraint{},
                             Binding::remote);
  if (!app.ok() || !host_display.ok() || !host_gui.ok() || !pda_display.ok() ||
      !pda_gui.ok()) {
    std::printf("deployment failed\n");
    return 1;
  }
  std::printf("pda renders through remote GUI part on node %llu\n",
              static_cast<unsigned long long>(pda_gui->host.value));

  // Wire GUI parts to their displays (assembly edges).
  (void)host.container().connect(id_of(*host_gui), "display",
                                 host_display->primary);
  (void)pda.connect_remote(*pda_gui, "display", pda_display->primary);

  // Users draw: the app publishes updates; every GUI part paints.
  for (auto [user, shape] : {std::pair{"ada", "line(0,0,4,4)"},
                             std::pair{"grace", "circle(2,2,1)"}}) {
    (void)host.orb().call(app->primary, "input",
                          {orb::Value(user), orb::Value(shape)});
  }
  auto rendered = host.orb().call(host_display->primary, "rendered");
  std::printf("\nwhiteboard shows: %s\n",
              rendered.ok() ? rendered->as<std::string>().c_str() : "?");
  auto count = host.orb().call(app->primary, "updates");
  std::printf("app processed %s updates\n",
              count.ok() ? count->to_string().c_str() : "?");

  // Run-time GUI replacement: install a new GUI part mid-session and swap.
  (void)host.install(make_package(
      "cscw.gui.fancy", "create_gui_fancy",
      [] { return std::make_unique<GuiPartInstance>("fancy"); },
      {{pkg::PortKind::provides, "gui", "cscw::GuiPart"},
       {pkg::PortKind::uses, "display", "cscw::Display"},
       {pkg::PortKind::consumes, "updates", "cscw.Update"}}));
  auto fancy = host.acquire_local("cscw.gui.fancy", VersionConstraint{});
  if (fancy.ok()) {
    (void)host.container().connect(id_of(*fancy), "display",
                                   host_display->primary);
    (void)host.container().destroy(id_of(*host_gui));  // retire old part
    (void)host.orb().call(app->primary, "input",
                          {orb::Value("ada"), orb::Value("text('hello')")});
    auto after = host.orb().call(host_display->primary, "rendered");
    std::printf("\nGUI part replaced at run time; board now: %s\n",
                after.ok() ? after->as<std::string>().c_str() : "?");
  }

  std::printf("\nhost registry: %zu running instances, %zu assembly edges\n",
              host.registry().instances().size(),
              host.registry().assembly().size());
  std::printf("done.\n");
  return 0;
}
