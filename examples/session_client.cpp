// Session walkthrough: durable service names over a crashing network.
//
//  1. Stand up five nodes; a stateful counter lives on the last one and
//     its lifecycle publishes `demo.counter` into the replicated service
//     directory automatically.
//  2. Open a Session on a client node. The session resolves by *name*,
//     caches the reference, and subscribes to directory change pushes.
//  3. Kill the hosting node mid-traffic. The session's next call blocks
//     inside its rebind loop -- failure detection, the death verdict and
//     the checkpoint restore all run underneath it -- then lands on the
//     restored instance. The application never sees an error.
//
// Build & run:  ./build/examples/session_client
#include <cstdio>

#include "core/node.hpp"
#include "session/session.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;

int main() {
  std::printf("== CORBA-LC session walkthrough ==\n\n");

  CohesionConfig cohesion;
  cohesion.heartbeat = seconds(1);
  cohesion.group_size = 8;
  cohesion.query_timeout = seconds(3);
  FailoverConfig failover;
  failover.checkpoint_interval = seconds(2);
  failover.replicas = 2;
  LocalNetwork net(cohesion, failover);
  std::vector<Node*> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(&net.add_node());
  net.settle();

  // The counter lives on node 5; acquiring it publishes `demo.counter`
  // into the directory replicas as a side effect.
  Node& host = *nodes[4];
  if (!host.install(testing::counter_package()).ok()) return 1;
  auto hosted = host.acquire_local("demo.counter", VersionConstraint{});
  if (!hosted.ok()) return 1;
  net.advance(seconds(5));  // checkpoints ship to the holders
  std::printf("demo.counter hosted on node %llu, published to %zu directory "
              "replicas\n",
              static_cast<unsigned long long>(host.id().value),
              host.directory_replicas().size());

  // A session on node 2: name-based calls, cached refs, change pushes.
  Node& client = *nodes[1];
  session::SessionConfig cfg;
  for (Node* n : nodes) {
    if (auto ref = client.directory_ref(n->id()); ref.ok())
      cfg.directory.push_back(*ref);
  }
  session::Session session(client.orb(), cfg, &client.tracer());
  session.set_clock(&net.clock());
  session.set_sleep_fn([&net](Duration d) { net.advance(d); });

  for (int i = 0; i < 3; ++i) (void)session.call("demo.counter", "increment");
  auto before = session.call("demo.counter", "value");
  std::printf("session calls increment x3, value = %s (cache hits: %llu)\n",
              before.ok() ? before->to_string().c_str() : "<error>",
              static_cast<unsigned long long>(
                  client.orb().metrics().counter("session.cache_hits")
                      .value()));

  // Let the 2 s checkpoint cadence capture the incremented state, so the
  // failover restores value=3 rather than the pre-increment snapshot.
  net.advance(seconds(5));

  // Kill the host. The very next session call rides through the failover.
  std::printf("\ncrashing node %llu...\n",
              static_cast<unsigned long long>(host.id().value));
  net.crash(host.id());
  auto survived = session.call("demo.counter", "increment");
  auto after = session.call("demo.counter", "value");
  auto where = session.cached("demo.counter");
  std::printf("next increment: %s, value = %s, now served by node %llu\n",
              survived.ok() ? "ok" : survived.error().to_string().c_str(),
              after.ok() ? after->to_string().c_str() : "<error>",
              where.ok()
                  ? static_cast<unsigned long long>(where->host.value)
                  : 0ULL);
  std::printf("session rebinds: %llu, surfaced errors: %llu, directory "
              "pushes heard: %llu\n",
              static_cast<unsigned long long>(
                  client.orb().metrics().counter("session.rebinds").value()),
              static_cast<unsigned long long>(
                  client.orb().metrics().counter("session.errors").value()),
              static_cast<unsigned long long>(
                  client.orb().metrics().counter("dir.notifications")
                      .value()));

  std::printf("\nsession event log:\n");
  for (const auto& line : session.event_log())
    std::printf("  %s\n", line.c_str());
  return 0;
}
