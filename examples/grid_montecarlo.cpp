// Grid computing with aggregation components (§3.2).
//
// A data-parallel ("aggregatable") Monte-Carlo component estimates pi. The
// coordinator splits the work; volunteer nodes fetch the component on first
// use (network-as-repository), run chunks, and return partials. One
// volunteer crashes mid-campaign -- its chunks are recovered locally, the
// volunteer-computing fault model.
#include <cstdio>

#include "core/aggregation.hpp"
#include "core/node.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;

int main() {
  std::printf("== Grid Monte-Carlo (aggregation components) ==\n\n");
  CohesionConfig cohesion;
  cohesion.heartbeat = seconds(1);
  LocalNetwork net(cohesion);

  Node& coordinator = net.add_node();
  std::vector<Node*> volunteers;
  for (int i = 0; i < 4; ++i) {
    NodeProfile p;
    p.device = i == 0 ? DeviceClass::server : DeviceClass::workstation;
    p.cpu_power = i == 0 ? 4.0 : 1.0;
    volunteers.push_back(&net.add_node(p));
  }
  net.settle();
  std::printf("network: 1 coordinator + %zu volunteers\n", volunteers.size());

  if (auto r = coordinator.install(testing::montecarlo_package()); !r.ok()) {
    std::printf("install failed: %s\n", r.error().to_string().c_str());
    return 1;
  }
  net.settle();

  auto mc = coordinator.acquire_local("demo.montecarlo", VersionConstraint{});
  if (!mc.ok()) {
    std::printf("acquire failed: %s\n", mc.error().to_string().c_str());
    return 1;
  }
  const InstanceId id{
      static_cast<std::uint64_t>(std::stoull(mc->instance_token))};
  (void)coordinator.orb().call(mc->primary, "configure",
                               {orb::Value(std::int64_t{400000})});

  std::vector<NodeId> worker_ids;
  for (Node* v : volunteers) worker_ids.push_back(v->id());

  // First campaign: everything healthy.
  auto report = run_data_parallel(coordinator, id, 8, worker_ids);
  if (!report.ok()) {
    std::printf("campaign failed: %s\n", report.error().to_string().c_str());
    return 1;
  }
  orb::CdrReader r1(report->result);
  std::printf("\ncampaign 1: pi ~= %.5f (%zu chunks, %zu on volunteers, "
              "%zu recovered)\n",
              *r1.read_double(), report->chunks, report->remote_chunks,
              report->recovered_chunks);
  std::printf("volunteers that fetched the component on demand: ");
  for (Node* v : volunteers)
    std::printf("%llu%s", static_cast<unsigned long long>(v->id().value),
                v->repository().has("demo.montecarlo", VersionConstraint{})
                    ? "(yes) "
                    : "(no) ");
  std::printf("\n");

  // Second campaign: one volunteer leaves mid-grid (IDLE machine reclaimed).
  net.crash(volunteers[1]->id());
  std::printf("\nvolunteer %llu left the network...\n",
              static_cast<unsigned long long>(volunteers[1]->id().value));
  auto report2 = run_data_parallel(coordinator, id, 8, worker_ids);
  if (!report2.ok()) {
    std::printf("campaign failed: %s\n", report2.error().to_string().c_str());
    return 1;
  }
  orb::CdrReader r2(report2->result);
  std::printf("campaign 2: pi ~= %.5f (%zu chunks, %zu on volunteers, "
              "%zu recovered locally)\n",
              *r2.read_double(), report2->chunks, report2->remote_chunks,
              report2->recovered_chunks);
  std::printf("\ndone.\n");
  return 0;
}
