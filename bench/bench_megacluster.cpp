// E17 -- Mega-cluster scale: multi-level hierarchy + sharded registry vs
// flat lookup, N = 8 .. 2000.
//
// Claim under test: with zones (one full MRM tree each), a roots-of-roots
// layer and a consistent-hash sharded directory, the *per-query*
// control-plane cost of an exact-name resolve is O(1) messages -- member ->
// zone root -> owner root -> back -- regardless of cluster size, while a
// flat broadcast lookup costs O(N). Steady-state background traffic is also
// reported per node so the hierarchy's aggregation is visible.
//
// All numbers come from the simulated network's byte/message accounting, in
// virtual time; wall-clock plays no part.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "sim/megacluster.hpp"

using namespace clc;
using namespace clc::core;
using namespace clc::sim;

namespace {

struct Series {
  double resolve_msgs = 0;   // messages per exact-name resolve
  double resolve_bytes = 0;  // bytes per exact-name resolve
  double resolve_us = 0;     // virtual latency per resolve
  double idle_bytes_per_node_per_s = 0;  // steady-state control plane
};

constexpr int kQueries = 20;

// Install one uniquely named component on every 16th node.
void install_components(MegaCluster& mc) {
  for (std::size_t i = 0; i < mc.size(); i += 16)
    mc.install(i, "comp" + std::to_string(i));
}

/// Steady-state control-plane traffic per node per (virtual) second,
/// measured over `window` with no queries in flight.
double measure_idle(MegaCluster& mc, Duration window) {
  mc.net().reset_stats();
  mc.run_for(window);
  return static_cast<double>(mc.net().stats().bytes_sent) /
         static_cast<double>(mc.size()) / to_seconds(window);
}

Series run_hierarchical(std::size_t n) {
  MegaClusterConfig cfg;
  cfg.nodes = n;
  // Zone size ~64: 2000 nodes -> 32 zones of 63, each zone a depth-3 tree
  // of group_size 8, plus the roots-of-roots layer on top.
  cfg.zones = n <= 64 ? 1 : (n + 62) / 63;
  cfg.seed = 17;
  MegaCluster mc(cfg);
  mc.build();
  install_components(mc);
  mc.run_for(seconds(30));

  Series s;
  s.idle_bytes_per_node_per_s = measure_idle(mc, seconds(20));

  // Per-query cost comes from the kind-based query-path accounting (z_*
  // resolve/relay/reply frames), so background heartbeats during the
  // resolve's virtual flight time don't pollute the numbers.
  double lat = 0;
  mc.reset_query_stats();
  for (int q = 0; q < kQueries; ++q) {
    // Ask from a rotating node for a rotating far target.
    const std::size_t from = (q * 97) % n;
    const std::size_t target = ((q * 331) % ((n + 15) / 16)) * 16;
    const TimePoint t0 = mc.sim().now();
    auto r = mc.resolve(from, "comp" + std::to_string(target));
    if (r.hits.empty())
      std::fprintf(stderr, "  [n=%zu] miss on comp%zu\n", n, target);
    lat += static_cast<double>(mc.sim().now() - t0);
  }
  s.resolve_msgs = static_cast<double>(mc.query_msgs()) / kQueries;
  s.resolve_bytes = static_cast<double>(mc.query_bytes()) / kQueries;
  s.resolve_us = lat / kQueries;
  return s;
}

Series run_flat(std::size_t n) {
  MegaClusterConfig cfg;
  cfg.nodes = n;
  cfg.flat = true;
  cfg.seed = 17;
  MegaCluster mc(cfg);
  mc.build();
  install_components(mc);

  Series s;
  s.idle_bytes_per_node_per_s = measure_idle(mc, seconds(20));

  double lat = 0;
  mc.reset_query_stats();
  for (int q = 0; q < kQueries; ++q) {
    const std::size_t from = (q * 97) % n;
    const std::size_t target = ((q * 331) % ((n + 15) / 16)) * 16;
    ComponentQuery query;
    query.name_pattern = "comp" + std::to_string(target);
    const TimePoint t0 = mc.sim().now();
    auto r = mc.query(from, query);
    if (r.hits.empty())
      std::fprintf(stderr, "  [n=%zu flat] miss on comp%zu\n", n, target);
    lat += static_cast<double>(mc.sim().now() - t0);
  }
  s.resolve_msgs = static_cast<double>(mc.query_msgs()) / kQueries;
  s.resolve_bytes = static_cast<double>(mc.query_bytes()) / kQueries;
  s.resolve_us = lat / kQueries;
  return s;
}

}  // namespace

int main() {
  clc::bench::BenchReport report("megacluster");
  std::printf("E17: mega-cluster scale -- sharded hierarchy vs flat lookup\n\n");
  std::printf("%6s | %14s | %14s | %14s | %14s | %16s\n", "N",
              "hier msgs/q", "hier bytes/q", "flat msgs/q", "flat bytes/q",
              "hier idle B/n/s");
  std::printf("-------+----------------+----------------+----------------+"
              "----------------+------------------\n");
  for (std::size_t n : {8u, 64u, 256u, 1000u, 2000u}) {
    const Series h = run_hierarchical(n);
    const Series f = run_flat(n);
    std::printf("%6zu | %14.1f | %14.1f | %14.1f | %14.1f | %16.1f\n", n,
                h.resolve_msgs, h.resolve_bytes, f.resolve_msgs,
                f.resolve_bytes, h.idle_bytes_per_node_per_s);
    const std::string suffix = ".n" + std::to_string(n);
    report.set("hier.msgs_per_query" + suffix, h.resolve_msgs);
    report.set("hier.bytes_per_query" + suffix, h.resolve_bytes);
    report.set("hier.latency_us" + suffix, h.resolve_us);
    report.set("hier.idle_bytes_per_node_per_s" + suffix,
               h.idle_bytes_per_node_per_s);
    report.set("flat.msgs_per_query" + suffix, f.resolve_msgs);
    report.set("flat.bytes_per_query" + suffix, f.resolve_bytes);
    report.set("flat.latency_us" + suffix, f.resolve_us);
    report.set("flat.idle_bytes_per_node_per_s" + suffix,
               f.idle_bytes_per_node_per_s);
  }
  std::printf(
      "\nshape check: hier per-query traffic is flat in N (member -> zone "
      "root -> shard owner -> back); flat broadcast grows ~2N. Hier idle "
      "bytes/node stay bounded: heartbeats are per-zone, hellos/publishes "
      "per-root.\n");
  return 0;
}
