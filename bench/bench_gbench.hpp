// Google-benchmark glue for BenchReport: a console reporter that mirrors
// every finished run into the report (as "<benchmark name>.real_time_ns"),
// so gbench-based benches emit the same BENCH_<name>.json as the
// table-printing ones.
#pragma once

#include <benchmark/benchmark.h>

#include "bench_report.hpp"

namespace clc::bench {

class ReportingConsoleReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingConsoleReporter(BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_.set(run.benchmark_name() + ".real_time_ns",
                  run.GetAdjustedRealTime());
      if (run.iterations > 0)
        report_.count(run.benchmark_name() + ".iterations",
                      static_cast<std::uint64_t>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport& report_;
};

inline void run_benchmarks_with_report(int argc, char** argv,
                                       BenchReport& report) {
  benchmark::Initialize(&argc, argv);
  ReportingConsoleReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
}

}  // namespace clc::bench
