// E6 -- Run-time deployment vs fixed (CCM-style) assembly (§2.4.4).
//
// Claim: "Conversely, in CORBA-LC the matching between component required
// instances and network-running instances is performed at run-time ... this
// decision may change to reflect changes in the load of either the nodes or
// the network." A fixed assembly pins instances to the hosts chosen at
// design time; CORBA-LC places them where the Resource Managers report
// headroom.
//
// Setup: heterogeneous 8-node network (different CPU power, different
// ambient load), 24 instances of a 0.1-CPU component to place.
//   baseline  -- static assembly: round-robin over the nodes the designer
//                knew about (the first 4), ignoring load;
//   CORBA-LC  -- run-time placement by Resource-Manager headroom score.
// Metric: resulting max/mean CPU load (lower max = better balance) and
// placement failures.
#include <cstdio>

#include <algorithm>

#include "bench_report.hpp"
#include "core/node.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;

namespace {

struct Outcome {
  double max_load = 0;
  double mean_load = 0;
  int failures = 0;
};

Outcome measure(const std::vector<Node*>& nodes) {
  Outcome o;
  double total = 0;
  for (Node* n : nodes) {
    const double load = n->resources().load().cpu_load;
    o.max_load = std::max(o.max_load, load);
    total += load;
  }
  o.mean_load = total / static_cast<double>(nodes.size());
  return o;
}

/// Pick the node with the most CPU headroom that can admit the component
/// (the Distributed Registry's placement decision, §2.4.2: "The Resource
/// Manager in the node collaborates with the Container in deciding initial
/// placement of component instances").
Node* best_node(const std::vector<Node*>& nodes,
                const pkg::ComponentDescription& d) {
  Node* best = nullptr;
  double best_headroom = -1;
  for (Node* n : nodes) {
    if (!n->resources().can_host(d)) continue;
    const double headroom = n->resources().cpu_headroom();
    if (headroom > best_headroom) {
      best_headroom = headroom;
      best = n;
    }
  }
  return best;
}

}  // namespace

int main() {
  clc::bench::BenchReport report("deployment");
  std::printf("E6: run-time deployment vs static (CCM-style) assembly\n");
  std::printf("(8 heterogeneous nodes, 24 instances of a 0.1-CPU component)\n\n");

  CohesionConfig cohesion;
  cohesion.heartbeat = seconds(1);

  auto build_world = [&](LocalNetwork& net, std::vector<Node*>& nodes) {
    const double powers[8] = {4.0, 2.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.25};
    const double ambient[8] = {0.1, 0.5, 0.2, 0.7, 0.05, 0.3, 0.6, 0.1};
    for (int i = 0; i < 8; ++i) {
      NodeProfile p;
      p.cpu_power = powers[i];
      Node& n = net.add_node(p);
      n.resources().set_ambient_cpu_load(ambient[i]);
      nodes.push_back(&n);
    }
    net.settle();
    for (Node* n : nodes) (void)n->install(clc::testing::calculator_package());
    net.settle();
  };

  pkg::ComponentDescription unit;  // the per-instance QoS declaration
  unit.name = "demo.calculator";
  unit.qos.max_cpu_load = 0.1;
  constexpr int kInstances = 24;

  // Baseline: static assembly, instances pinned round-robin to the first
  // four hosts (what a deployment descriptor written in advance would say).
  Outcome fixed;
  {
    LocalNetwork net(cohesion);
    std::vector<Node*> nodes;
    build_world(net, nodes);
    for (int i = 0; i < kInstances; ++i) {
      Node* pinned = nodes[i % 4];
      auto id = pinned->container().create("demo.calculator",
                                           VersionConstraint{});
      if (!id.ok()) ++fixed.failures;
    }
    Outcome o = measure(nodes);
    fixed.max_load = o.max_load;
    fixed.mean_load = o.mean_load;
  }

  // CORBA-LC: run-time placement by Resource-Manager headroom.
  Outcome dynamic;
  {
    LocalNetwork net(cohesion);
    std::vector<Node*> nodes;
    build_world(net, nodes);
    for (int i = 0; i < kInstances; ++i) {
      Node* chosen = best_node(nodes, unit);
      if (chosen == nullptr) {
        ++dynamic.failures;
        continue;
      }
      auto id = chosen->container().create("demo.calculator",
                                           VersionConstraint{});
      if (!id.ok()) ++dynamic.failures;
    }
    Outcome o = measure(nodes);
    dynamic.max_load = o.max_load;
    dynamic.mean_load = o.mean_load;
  }

  std::printf("%22s | %9s | %9s | %9s\n", "policy", "max load", "mean load",
              "failures");
  std::printf("-----------------------+-----------+-----------+----------\n");
  std::printf("%22s | %9.2f | %9.2f | %9d\n", "static assembly", fixed.max_load,
              fixed.mean_load, fixed.failures);
  std::printf("%22s | %9.2f | %9.2f | %9d\n", "run-time placement",
              dynamic.max_load, dynamic.mean_load, dynamic.failures);
  report.set("static.max_load", fixed.max_load);
  report.set("static.mean_load", fixed.mean_load);
  report.set("static.failures", fixed.failures);
  report.set("dynamic.max_load", dynamic.max_load);
  report.set("dynamic.mean_load", dynamic.mean_load);
  report.set("dynamic.failures", dynamic.failures);
  std::printf("\nshape check: run-time placement keeps the max node load far "
              "below the static assembly's (which overloads the designer's "
              "four hosts and fails admissions).\n");
  return 0;
}
