// E1 -- "Simplicity and performance" (§2 req. 1, Fig. 1).
//
// The model must be lightweight: this bench quantifies the invocation cost
// ladder -- direct C++ virtual call, collocated ORB dispatch (full marshal/
// unmarshal), loopback remote call, remote call over real TCP sockets, and
// a simulated WAN hop -- plus payload-size sweeps and the cost of node
// service operations (instantiation).
#include <benchmark/benchmark.h>

#include "bench_gbench.hpp"
#include "bench_report.hpp"
#include "core/node.hpp"
#include "obs/trace.hpp"
#include "orb/tcp.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;

namespace {

struct InvocationFixture {
  InvocationFixture() : net(make_config()) {
    server = &net.add_node();
    client = &net.add_node();
    net.settle();
    (void)server->install(testing::calculator_package());
    net.settle();
    // Resolve from the client so the component IDL is imported there too.
    bound = client->resolve("demo.calculator", VersionConstraint{},
                            Binding::remote)
                .value();
  }
  static CohesionConfig make_config() {
    CohesionConfig cfg;
    cfg.heartbeat = seconds(2);
    return cfg;
  }
  LocalNetwork net;
  Node* server = nullptr;
  Node* client = nullptr;
  BoundComponent bound;
};

InvocationFixture& fixture() {
  static InvocationFixture f;
  return f;
}

/// Baseline: plain C++ virtual dispatch on the servant object.
void BM_DirectCppCall(benchmark::State& state) {
  struct Iface {
    virtual ~Iface() = default;
    virtual int add(int a, int b) = 0;
  };
  struct Impl : Iface {
    int add(int a, int b) override { return a + b; }
  };
  Impl impl;
  Iface* iface = &impl;
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(x = iface->add(x, 1));
  }
}
BENCHMARK(BM_DirectCppCall);

/// Collocated ORB call: full request marshal + dispatch + reply unmarshal,
/// no transport hop (server invoking its own object).
void BM_CollocatedOrbCall(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    auto r = f.server->orb().call(f.bound.primary, "add",
                                  {orb::Value(std::int32_t{1}),
                                   orb::Value(std::int32_t{2})});
    if (!r.ok()) state.SkipWithError("call failed");
  }
}
BENCHMARK(BM_CollocatedOrbCall);

/// A bare single-interface Orb for apples-to-apples interceptor deltas
/// (same repo size, same servant count; only the chain differs).
struct BareCalcOrb {
  explicit BareCalcOrb(
      std::uint64_t node_id, bool traced = false,
      orb::CollocationPolicy policy = orb::CollocationPolicy::direct)
      : repo(std::make_shared<idl::InterfaceRepository>()),
        orb(NodeId{node_id}, repo) {
    (void)repo->register_idl(
        "module b0 { interface Calc { long add(in long a, in long b); }; };");
    auto servant = std::make_shared<orb::DynamicServant>("b0::Calc");
    servant->on("add", [](orb::ServerRequest& req) -> Result<void> {
      req.set_result(orb::Value(static_cast<std::int32_t>(
          *req.arg(0).to_int() + *req.arg(1).to_int())));
      return {};
    });
    target = orb.activate(std::move(servant));
    orb.set_collocation_policy(policy);
    if (traced) {
      collector = std::make_shared<obs::TraceCollector>();
      tracer = std::make_unique<obs::Tracer>(orb.node_id(), collector);
      orb.add_client_interceptor(
          std::make_shared<obs::TraceClientInterceptor>(*tracer));
      orb.add_server_interceptor(
          std::make_shared<obs::TraceServerInterceptor>(*tracer));
    }
  }
  void run(benchmark::State& state) {
    for (auto _ : state) {
      auto r = orb.call(target, "add",
                        {orb::Value(std::int32_t{1}),
                         orb::Value(std::int32_t{2})});
      if (!r.ok()) state.SkipWithError("call failed");
    }
  }
  std::shared_ptr<idl::InterfaceRepository> repo;
  orb::Orb orb;
  orb::ObjectRef target;
  std::shared_ptr<obs::TraceCollector> collector;
  std::unique_ptr<obs::Tracer> tracer;
};

/// Baseline: no interceptors registered at all.
void BM_CollocatedOrbCallNoInterceptors(benchmark::State& state) {
  static BareCalcOrb bare(90);
  bare.run(state);
}
BENCHMARK(BM_CollocatedOrbCallNoInterceptors);

/// Trace interceptor pair registered, default `direct` collocation policy:
/// the chain stays off the collocated fast path (the classic ORB
/// collocation optimization), so the delta against the no-interceptor
/// baseline is the observability tax on local calls -- §2 req. 1 demands
/// it stays within noise.
void BM_CollocatedOrbCallWithInterceptors(benchmark::State& state) {
  static BareCalcOrb traced(94, /*traced=*/true);
  traced.run(state);
}
BENCHMARK(BM_CollocatedOrbCallWithInterceptors);

/// Full chain forced onto the collocated call (`through_frame` policy):
/// quantifies what the collocation optimization saves -- the strict-PI
/// cost of spans, context marshalling and the frame's service-context
/// block.
void BM_CollocatedOrbCallThroughFrame(benchmark::State& state) {
  static BareCalcOrb traced(95, /*traced=*/true,
                            orb::CollocationPolicy::through_frame);
  traced.run(state);
}
BENCHMARK(BM_CollocatedOrbCallThroughFrame);

/// Remote call over the in-process loopback transport.
void BM_LoopbackRemoteCall(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    auto r = f.client->orb().call(f.bound.primary, "add",
                                  {orb::Value(std::int32_t{1}),
                                   orb::Value(std::int32_t{2})});
    if (!r.ok()) state.SkipWithError("call failed");
  }
}
BENCHMARK(BM_LoopbackRemoteCall);

/// Remote call across real TCP sockets (two ORBs, one host).
void BM_TcpRemoteCall(benchmark::State& state) {
  static auto repo = std::make_shared<idl::InterfaceRepository>();
  static orb::Orb server(NodeId{91}, repo);
  static orb::Orb client(NodeId{92}, repo);
  static orb::TcpServer listener;
  static orb::ObjectRef target = [] {
    (void)repo->register_idl(
        "module b { interface Calc { long add(in long a, in long b); }; };");
    auto servant = std::make_shared<orb::DynamicServant>("b::Calc");
    servant->on("add", [](orb::ServerRequest& req) -> Result<void> {
      req.set_result(orb::Value(static_cast<std::int32_t>(
          *req.arg(0).to_int() + *req.arg(1).to_int())));
      return {};
    });
    auto endpoint =
        listener.start([](BytesView f) { return server.handle_frame(f); });
    server.set_endpoint(endpoint.value());
    client.set_endpoint("tcp:127.0.0.1:0");
    client.add_transport("tcp", std::make_shared<orb::TcpTransport>());
    return server.activate(servant);
  }();
  for (auto _ : state) {
    auto r = client.call(target, "add",
                         {orb::Value(std::int32_t{1}),
                          orb::Value(std::int32_t{2})});
    if (!r.ok()) state.SkipWithError("call failed");
  }
}
BENCHMARK(BM_TcpRemoteCall);

/// Payload sweep: echo a string argument of the given size (loopback).
void BM_PayloadSweep(benchmark::State& state) {
  static auto repo = std::make_shared<idl::InterfaceRepository>();
  static orb::Orb orb_instance(NodeId{93}, repo);
  static orb::ObjectRef target = [] {
    (void)repo->register_idl(
        "module b { interface Echo { string echo(in string s); }; };");
    auto servant = std::make_shared<orb::DynamicServant>("b::Echo");
    servant->on("echo", [](orb::ServerRequest& req) -> Result<void> {
      req.set_result(req.arg(0));
      return {};
    });
    return orb_instance.activate(servant);
  }();
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    auto r = orb_instance.call(target, "echo", {orb::Value(payload)});
    if (!r.ok()) state.SkipWithError("call failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PayloadSweep)->Arg(8)->Arg(1024)->Arg(65536);

/// Node-service cost: create + destroy one component instance.
void BM_InstantiateDestroy(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    auto id = f.server->container().create("demo.calculator",
                                           VersionConstraint{});
    if (!id.ok()) {
      state.SkipWithError("create failed");
      break;
    }
    (void)f.server->container().destroy(*id);
  }
}
BENCHMARK(BM_InstantiateDestroy);

/// Distributed resolve cost (cached digests, remote bind).
void BM_NetworkResolve(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    auto r = f.client->resolve("demo.calculator", VersionConstraint{},
                               Binding::remote);
    if (!r.ok()) state.SkipWithError("resolve failed");
  }
}
BENCHMARK(BM_NetworkResolve);

}  // namespace

int main(int argc, char** argv) {
  clc::bench::BenchReport report("invocation");
  clc::bench::run_benchmarks_with_report(argc, argv, report);
  return 0;
}
