// E4 -- The hierarchical protocol reduces load and exploits locality
// (§2.4.3).
//
// Claim: "Hierarchical protocol: the protocol must allow logical grouping
// and incremental resource lookup. If current requirements cannot be met
// with current level resources, the protocol must request higher hierarchy
// level requests. This reduces network load and exploits locality."
//
// Fixed 256-node network; we sweep the group size (which sets the tree
// depth) and measure: messages per query when the target is *inside* the
// querying node's group (locality) vs on a random remote node, plus the
// per-query message count of a flat broadcast baseline.
#include <cstdio>

#include "bench_report.hpp"
#include "sim_world.hpp"
#include "util/rng.hpp"

using namespace clc;
using namespace clc::bench;

namespace {

struct Series {
  int depth = 0;
  std::size_t fan_out = 0;  // measured root fan-out (children of the root)
  double local_msgs = 0;   // target within the querying node's group
  double remote_msgs = 0;  // target on a random far node
};

Series run(std::size_t group_size, std::size_t n) {
  SimWorld w(bench_config(CohesionConfig::Mode::hierarchical, group_size), 9);
  w.build(n);
  w.run_for(seconds(60));
  Series s;
  s.depth = w.peer(0).node().subtree_depth();
  s.fan_out = w.peer(0).node().children().size();

  Rng rng(21);
  constexpr int kQueries = 20;

  // Locality: target is the querying node's own group MRM's other child.
  // We approximate "same group" by querying from a node for a component on
  // its tree parent (one hop of locality).
  double local_total = 0;
  for (int i = 0; i < kQueries; ++i) {
    const std::size_t from = 1 + rng.next_below(n - 1);
    const NodeId parent = w.peer(from).node().parent();
    if (!parent.valid()) continue;
    auto& host = w.peer(parent.value - 1);
    const std::string name = "local.comp." + std::to_string(i);
    host.components.push_back(ComponentSummary{name, Version{1, 0, 0}, true, 0});
    w.run_for(w.config().heartbeat * 3);
    w.net().reset_stats();
    ComponentQuery q;
    q.name_pattern = name;
    (void)w.query(from, q);
    local_total += static_cast<double>(w.net().stats().messages_sent);
  }
  s.local_msgs = local_total / kQueries;

  // Remote: target on a random distant node.
  double remote_total = 0;
  for (int i = 0; i < kQueries; ++i) {
    const std::size_t from = rng.next_below(n / 4);
    const std::size_t host_index = n / 2 + rng.next_below(n / 2);
    const std::string name = "remote.comp." + std::to_string(i);
    w.peer(host_index).components.push_back(
        ComponentSummary{name, Version{1, 0, 0}, true, 0});
    w.run_for(w.config().heartbeat * 3);
    w.net().reset_stats();
    ComponentQuery q;
    q.name_pattern = name;
    (void)w.query(from, q);
    remote_total += static_cast<double>(w.net().stats().messages_sent);
  }
  s.remote_msgs = remote_total / kQueries;
  return s;
}

double flat_msgs(std::size_t n) {
  SimWorld w(bench_config(CohesionConfig::Mode::flat_query), 9);
  w.build(n);
  w.run_for(seconds(40));
  w.peer(n / 2).components.push_back(
      ComponentSummary{"flat.comp", Version{1, 0, 0}, true, 0});
  double total = 0;
  constexpr int kQueries = 10;
  for (int i = 0; i < kQueries; ++i) {
    w.net().reset_stats();
    ComponentQuery q;
    q.name_pattern = "flat.comp";
    (void)w.query(i, q);
    total += static_cast<double>(w.net().stats().messages_sent);
  }
  return total / kQueries;
}

}  // namespace

int main() {
  BenchReport report("hierarchy");
  constexpr std::size_t kNodes = 256;
  std::printf("E4: hierarchy -- incremental lookup and locality (%zu nodes)\n\n",
              kNodes);
  std::printf("%10s | %5s | %7s | %16s | %16s\n", "group size", "depth",
              "fan-out", "in-group msgs/q", "far-node msgs/q");
  std::printf("-----------+-------+---------+------------------+"
              "------------------\n");
  for (std::size_t g : {4u, 8u, 16u, 64u}) {
    const Series s = run(g, kNodes);
    std::printf("%10zu | %5d | %7zu | %16.1f | %16.1f\n", g, s.depth,
                s.fan_out, s.local_msgs, s.remote_msgs);
    const std::string suffix = ".g" + std::to_string(g);
    report.set("tree_depth" + suffix, s.depth);
    report.set("fan_out" + suffix, static_cast<double>(s.fan_out));
    report.set("configured_group_size" + suffix, static_cast<double>(g));
    report.set("in_group.msgs_per_query" + suffix, s.local_msgs);
    report.set("far_node.msgs_per_query" + suffix, s.remote_msgs);
  }
  const double flat = flat_msgs(kNodes);
  std::printf("%10s | %5s | %16s | %16.1f\n", "flat", "-", "-", flat);
  report.set("flat.msgs_per_query", flat);
  std::printf("\nshape check: in-group lookups stay cheap at every depth "
              "(locality); far lookups cost a few messages per level; flat "
              "broadcast costs ~2N messages regardless.\n");
  return 0;
}
