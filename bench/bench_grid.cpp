// E11 -- Grid computing with aggregation components (§3.2).
//
// Claim: aggregation-capable components let the network act as a compute
// grid (IDLE/volunteer computing). All volunteers share one physical core
// here, so raw wall time cannot show parallel speedup; instead we measure
// the real distribution overhead per chunk (marshaling + transport + remote
// instantiation) against the real chunk compute time, and report the
// modeled speedup  S(k) = T_serial / (T_serial/k + k * overhead)  that a
// k-machine deployment would reach -- the quantity a placement policy needs.
#include <chrono>
#include <cstdio>

#include "bench_report.hpp"
#include "core/aggregation.hpp"
#include "core/node.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  clc::bench::BenchReport report("grid");
  std::printf("E11: grid aggregation -- distribution overhead and modeled "
              "speedup\n\n");
  CohesionConfig cohesion;
  cohesion.heartbeat = seconds(2);
  LocalNetwork net(cohesion);
  Node& coordinator = net.add_node();
  std::vector<NodeId> volunteers;
  for (int i = 0; i < 8; ++i) volunteers.push_back(net.add_node().id());
  net.settle();
  (void)coordinator.install(clc::testing::montecarlo_package());
  net.settle();

  auto mc = coordinator.acquire_local("demo.montecarlo", VersionConstraint{});
  if (!mc.ok()) {
    std::printf("setup failed: %s\n", mc.error().to_string().c_str());
    return 1;
  }
  const InstanceId id{
      static_cast<std::uint64_t>(std::stoull(mc->instance_token))};
  constexpr std::int64_t kSamples = 4000000;
  (void)coordinator.orb().call(mc->primary, "configure",
                               {orb::Value(kSamples)});

  // Serial compute time (single local chunk).
  auto serial_start = std::chrono::steady_clock::now();
  auto serial = run_data_parallel(coordinator, id, 1, {});
  const double t_serial = seconds_since(serial_start);
  if (!serial.ok()) {
    std::printf("serial run failed\n");
    return 1;
  }
  orb::CdrReader r(serial->result);
  std::printf("serial: %lld samples in %.3f s (pi ~= %.5f)\n",
              static_cast<long long>(kSamples), t_serial, *r.read_double());
  report.set("serial_time_s", t_serial);

  // Distribution overhead: run tiny chunks remotely and time the envelope.
  (void)coordinator.orb().call(mc->primary, "configure",
                               {orb::Value(std::int64_t{8})});
  // Warm-up: first use makes volunteers fetch the package.
  (void)run_data_parallel(coordinator, id, 8, volunteers);
  constexpr int kProbe = 64;
  auto probe_start = std::chrono::steady_clock::now();
  auto probe = run_data_parallel(coordinator, id, kProbe, volunteers);
  const double overhead =
      probe.ok() ? seconds_since(probe_start) / kProbe : 0.0;
  std::printf("per-chunk distribution overhead: %.1f us "
              "(remote instantiation amortized; marshaling + transport)\n\n",
              overhead * 1e6);
  report.set("chunk_overhead_us", overhead * 1e6);

  std::printf("%12s | %14s | %12s\n", "volunteers", "modeled time",
              "speedup");
  std::printf("-------------+----------------+-------------\n");
  for (int k : {1, 2, 4, 8, 16, 32}) {
    const double t_k = t_serial / k + k * overhead;
    std::printf("%12d | %12.3f s | %10.2fx\n", k, t_k, t_serial / t_k);
    report.set("modeled_speedup.k" + std::to_string(k), t_serial / t_k);
  }

  // Volunteer churn: kill two volunteers, re-run, count recovered chunks.
  (void)coordinator.orb().call(mc->primary, "configure",
                               {orb::Value(std::int64_t{80000})});
  net.crash(volunteers[2]);
  net.crash(volunteers[5]);
  auto churn = run_data_parallel(coordinator, id, 16, volunteers);
  if (churn.ok()) {
    std::printf("\nchurn: 2 of 8 volunteers died; %zu/%zu chunks recovered "
                "locally, result still correct (pi ~= ",
                churn->recovered_chunks, churn->chunks);
    orb::CdrReader cr(churn->result);
    std::printf("%.4f)\n", *cr.read_double());
    report.set("churn.recovered_chunks",
               static_cast<double>(churn->recovered_chunks));
    report.set("churn.chunks", static_cast<double>(churn->chunks));
  }
  std::printf("\nshape check: near-linear modeled speedup until the k * "
              "overhead term bites; churn costs only the lost chunks.\n");
  return 0;
}
