// E10 -- CSCW viability: event fan-out, remote GUI cost, run-time GUI swap
// (Fig. 2, §3.1).
//
// Synchronous CSCW needs every participant's GUI part to see each update
// promptly. We measure push-channel fan-out throughput against subscriber
// count (local vs remote consumers), the per-update cost a PDA pays for a
// fully remote GUI, and the cost of replacing a GUI part at run time.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_report.hpp"
#include "core/node.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Publish `events` updates to `subscribers` consumers; returns events/s.
double fanout_rate(std::size_t subscribers, bool remote, int events) {
  CohesionConfig cohesion;
  cohesion.heartbeat = seconds(2);
  LocalNetwork net(cohesion);
  Node& producer = net.add_node();
  Node& consumer_host = net.add_node();
  net.settle();

  std::size_t delivered = 0;
  std::vector<orb::ObjectRef> consumers;
  for (std::size_t i = 0; i < subscribers; ++i) {
    auto servant = std::make_shared<CallbackEventConsumer>(
        [&delivered](const orb::Value&) { ++delivered; });
    if (remote) {
      auto ref = consumer_host.orb().activate(std::move(servant));
      (void)producer.events().subscribe_remote("board.update", ref);
    } else {
      producer.events().subscribe_local(
          "board.update", [&delivered](const orb::Value&) { ++delivered; });
    }
  }

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < events; ++i)
    producer.events().publish("board.update", orb::Value("stroke"));
  const double elapsed = seconds_since(start);
  if (delivered != static_cast<std::size_t>(events) * subscribers) {
    std::printf("  (warning: delivered %zu of %zu)\n", delivered,
                static_cast<std::size_t>(events) * subscribers);
  }
  return static_cast<double>(events) / (elapsed > 0 ? elapsed : 1e-9);
}

}  // namespace

int main() {
  clc::bench::BenchReport report("cscw");
  std::printf("E10: CSCW event fan-out (push channels, Fig. 2)\n\n");
  std::printf("%12s | %16s | %16s\n", "subscribers", "local (evt/s)",
              "remote (evt/s)");
  std::printf("-------------+------------------+------------------\n");
  for (std::size_t s : {1u, 4u, 16u, 64u}) {
    const double local = fanout_rate(s, false, 2000);
    const double remote = fanout_rate(s, true, 500);
    std::printf("%12zu | %16.0f | %16.0f\n", s, local, remote);
    const std::string suffix = ".subs" + std::to_string(s);
    report.set("local.events_per_s" + suffix, local);
    report.set("remote.events_per_s" + suffix, remote);
  }

  // PDA per-update cost: one remote call to a GUI part vs a local call.
  {
    CohesionConfig cohesion;
    cohesion.heartbeat = seconds(2);
    LocalNetwork net(cohesion);
    Node& host = net.add_node();
    Node& pda = net.add_node();
    net.settle();
    (void)host.install(clc::testing::calculator_package());
    net.settle();
    auto local_gui = host.acquire_local("demo.calculator", VersionConstraint{});
    auto remote_gui = pda.resolve("demo.calculator", VersionConstraint{},
                                  Binding::remote);
    constexpr int kCalls = 3000;
    auto time_calls = [&](Node& from, const orb::ObjectRef& target) {
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kCalls; ++i)
        (void)from.orb().call(target, "add",
                              {orb::Value(std::int32_t{1}),
                               orb::Value(std::int32_t{2})});
      return seconds_since(start) / kCalls * 1e6;
    };
    std::printf("\nE10b: per-update GUI invocation cost\n");
    const double local_us = time_calls(host, local_gui->primary);
    const double remote_us = time_calls(pda, remote_gui->primary);
    std::printf("  workstation, local GUI part: %8.2f us/update\n", local_us);
    std::printf("  PDA, remote GUI part:        %8.2f us/update\n", remote_us);
    report.set("gui.local_us_per_update", local_us);
    report.set("gui.remote_us_per_update", remote_us);
  }

  // Run-time GUI replacement cost: instantiate + rewire a component.
  {
    CohesionConfig cohesion;
    cohesion.heartbeat = seconds(2);
    LocalNetwork net(cohesion);
    Node& host = net.add_node();
    net.settle();
    (void)host.install(clc::testing::calculator_package());
    constexpr int kSwaps = 200;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSwaps; ++i) {
      auto id = host.container().create("demo.calculator", VersionConstraint{});
      if (id.ok()) (void)host.container().destroy(*id);
    }
    const double swap_us = seconds_since(start) / kSwaps * 1e6;
    std::printf("\nE10c: run-time GUI part swap (create+destroy): %.1f "
                "us/swap\n",
                swap_us);
    report.set("gui.swap_us", swap_us);
  }
  std::printf("\nshape check: local fan-out scales linearly with "
              "subscribers; remote costs one oneway call per subscriber; "
              "swaps are sub-millisecond -- interactive CSCW is viable.\n");
  return 0;
}
