// E14 -- Asynchronous pipelined invocations (AMI).
//
// Measures what request pipelining buys on a latency-dominated link: the
// loopback transport models a 200 us one-way delay (a fast LAN hop) and
// runs an async worker pool so in-flight requests genuinely overlap, then
// a depth sweep issues the same call volume with 1..32 invocations in
// flight (sliding window over Orb::invoke_async). Depth 1 degenerates to
// the serial invoke() baseline; the speedup column is the pipelining win.
// The paper's requirement 1 ("simplicity and performance") sets the bar:
// the async machinery must not tax the serial path, and deep pipelines
// should approach depth-x speedup until the worker pool saturates.
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>

#include "bench_report.hpp"
#include "orb/orb.hpp"
#include "orb/transport.hpp"

using namespace clc;

namespace {

constexpr Duration kOneWayLatencyUs = 200;
constexpr int kCalls = 400;
constexpr int kDepths[] = {1, 2, 4, 8, 16, 32};

struct PipelineWorld {
  std::shared_ptr<idl::InterfaceRepository> repo =
      std::make_shared<idl::InterfaceRepository>();
  std::shared_ptr<orb::LoopbackNetwork> net =
      std::make_shared<orb::LoopbackNetwork>();
  std::unique_ptr<orb::Orb> server;
  std::unique_ptr<orb::Orb> client;
  orb::ObjectRef target;

  PipelineWorld() {
    (void)repo->register_idl(
        "module e14 { interface Calc { long twice(in long v); }; };");
    server = std::make_unique<orb::Orb>(NodeId{1}, repo);
    client = std::make_unique<orb::Orb>(NodeId{2}, repo);
    auto* s = server.get();
    server->set_endpoint(net->register_endpoint(
        [s](BytesView frame) { return s->handle_frame(frame); }));
    client->add_transport("loop", net);
    auto servant = std::make_shared<orb::DynamicServant>("e14::Calc");
    servant->on("twice", [](orb::ServerRequest& req) -> Result<void> {
      req.set_result(orb::Value(
          static_cast<std::int32_t>(2 * *req.arg(0).to_int())));
      return {};
    });
    target = server->activate(servant);
    orb::LoopbackNetwork::Config cfg;
    cfg.latency = kOneWayLatencyUs;
    net->set_config(cfg);
  }
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Serial baseline: one blocking invoke() after another.
double measure_serial(PipelineWorld& w, int calls) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < calls; ++i) {
    auto r = w.client->call(w.target, "twice",
                            {orb::Value(static_cast<std::int32_t>(i))});
    if (!r.ok()) {
      std::fprintf(stderr, "serial call failed: %s\n",
                   r.error().to_string().c_str());
      return -1;
    }
  }
  return seconds_since(t0);
}

/// Sliding window of `depth` pending invocations: issue until the window
/// is full, then retire the oldest before issuing the next.
double measure_pipelined(PipelineWorld& w, int calls, int depth) {
  const auto t0 = std::chrono::steady_clock::now();
  std::deque<std::pair<int, orb::PendingInvocation>> window;
  int issued = 0;
  bool failed = false;
  auto retire = [&] {
    auto [v, pending] = std::move(window.front());
    window.pop_front();
    auto out = pending.take();
    if (!out.ok() ||
        out->result != orb::Value(static_cast<std::int32_t>(2 * v)))
      failed = true;
  };
  while (issued < calls) {
    if (static_cast<int>(window.size()) >= depth) retire();
    window.emplace_back(
        issued, w.client->invoke_async(
                    w.target, "twice",
                    {orb::Value(static_cast<std::int32_t>(issued))}));
    ++issued;
  }
  while (!window.empty()) retire();
  if (failed) {
    std::fprintf(stderr, "pipelined call failed or mismatched\n");
    return -1;
  }
  return seconds_since(t0);
}

}  // namespace

int main() {
  clc::bench::BenchReport report("pipeline");
  PipelineWorld w;
  // Workers >= max depth so every in-flight request's modelled latency
  // can overlap, as it would on a real network.
  w.net->start_async_workers(32);

  // Warm the path (connection setup, first-touch allocations).
  (void)measure_serial(w, 32);

  const double serial_s = measure_serial(w, kCalls);
  const double serial_rps = kCalls / serial_s;
  report.set("pipeline.latency_us", static_cast<double>(kOneWayLatencyUs));
  report.count("pipeline.calls", kCalls);
  report.set("pipeline.serial_rps", serial_rps);
  std::printf("E14: %d calls over loopback with %lld us one-way latency\n",
              kCalls, static_cast<long long>(kOneWayLatencyUs));
  std::printf("%-10s %12s %12s %10s\n", "mode", "elapsed_ms", "calls/s",
              "speedup");
  std::printf("%-10s %12.1f %12.0f %10s\n", "serial", serial_s * 1e3,
              serial_rps, "1.00x");

  for (int depth : kDepths) {
    const double s = measure_pipelined(w, kCalls, depth);
    if (s < 0) return 1;
    const double rps = kCalls / s;
    const double speedup = serial_s / s;
    char key[64];
    std::snprintf(key, sizeof key, "pipeline.depth%d_rps", depth);
    report.set(key, rps);
    std::snprintf(key, sizeof key, "pipeline.depth%d_speedup", depth);
    report.set(key, speedup);
    char mode[16];
    std::snprintf(mode, sizeof mode, "depth %d", depth);
    std::printf("%-10s %12.1f %12.0f %9.2fx\n", mode, s * 1e3, rps, speedup);
  }

  w.net->stop_async_workers();
  report.write();
  return 0;
}
