// Machine-readable bench output.
//
// Every bench prints its human-readable table to stdout AND mirrors the
// numbers into a BenchReport, which dumps a BENCH_<name>.json file (in the
// working directory) on destruction using the metrics-registry JSON
// encoder. Downstream tooling reads the JSON; the tables stay for humans.
#pragma once

#include <cstdio>
#include <string>

#include "obs/metrics.hpp"

namespace clc::bench {

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}
  ~BenchReport() { write(); }
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Record one scalar result, e.g. set("hier.msgs_per_query.n128", 12.4).
  void set(const std::string& metric, double value) {
    registry_.gauge(metric).set(value);
  }
  void count(const std::string& metric, std::uint64_t value) {
    registry_.counter(metric).add(value);
  }
  /// Direct access for histograms or pre-aggregated registries.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return registry_; }

  [[nodiscard]] std::string path() const { return "BENCH_" + name_ + ".json"; }

  /// Write (or rewrite) the JSON file; also called from the destructor.
  void write() const {
    std::FILE* f = std::fopen(path().c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench report: cannot write %s\n", path().c_str());
      return;
    }
    std::fprintf(f, "{\"bench\":\"%s\",\"metrics\":%s}\n",
                 obs::json_escape(name_).c_str(),
                 registry_.to_json().c_str());
    std::fclose(f);
  }

 private:
  std::string name_;
  obs::MetricsRegistry registry_;
};

}  // namespace clc::bench
