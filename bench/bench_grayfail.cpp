// E19 -- Gray-failure tolerance: hedged requests + health-aware binding
// against a replica that degrades without dying (DESIGN.md §17).
//
// Claim: when 1 of 3 replicas turns gray mid-run (10x service time plus
// periodic stuck-worker stalls, still answering heartbeats), a baseline
// round-robin client's p99 explodes past 20x the healthy-cluster p99,
// while a client using hedged requests + health-aware ranking holds p99
// within 3x healthy -- and spends at most ~5% extra requests doing it
// (the hedge budget).
//
// Setup: 3 replicas behind one client issuing a call every 2 ms for 60
// virtual seconds (30k calls). Healthy service time is uniform 800-1200
// µs. At t=20s replica 1 turns gray for the rest of the run: service x10
// and a 50 ms stall every 250 ms (calls landing in a stall wait it out --
// the stuck-worker shape from the gray fault injector). The latency
// estimator, hedge delay (estimated p95 = ewma + 2·dev) and the ~5%
// budget gate mirror the Orb implementation; the ranking signal is the
// real EndpointHealthTracker.
//
//   healthy       -- no gray replica, round-robin: the reference p99.
//   baseline      -- gray replica, round-robin, no hedging.
//   hedge-only    -- gray replica, round-robin + hedging: the budget trims
//                    the stall tail but ~1/3 of calls still ride the gray
//                    replica, so p99 stays near its 10x service time.
//   hedged+health -- gray replica, health-ranked placement + hedging: the
//                    first slow samples are hedged, the inflated EWMA then
//                    demotes the gray replica and traffic steers away.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "fault/plan.hpp"
#include "orb/health.hpp"
#include "orb/resilience.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace clc;

namespace {

constexpr int kReplicas = 3;
constexpr Duration kRun = seconds(60);
constexpr Duration kInterArrival = milliseconds(2);
constexpr Duration kBaseMin = 800;    // µs
constexpr Duration kBaseSpan = 400;   // service = 800 + [0, 400) µs
constexpr std::uint64_t kSeed = 0xE19ULL;

// The gray event: replica 1, onset t=20s, for the rest of the run.
fault::GrayEvent gray_event() {
  fault::GrayEvent ev;
  ev.node = NodeId{1};
  ev.at = seconds(20);
  ev.duration = kRun - ev.at;
  ev.service_factor = 10.0;
  ev.stall_period = milliseconds(250);
  ev.stall_duration = milliseconds(50);
  return ev;
}

struct Replica {
  std::string endpoint;
  bool gray = false;  // subject to the gray event

  /// Modelled response time for a call arriving at `at`.
  Duration serve(TimePoint at, Rng& rng, const fault::GrayEvent& ev) const {
    Duration service = kBaseMin + static_cast<Duration>(rng.next_below(
                                      static_cast<std::uint64_t>(kBaseSpan)));
    if (!gray || at < ev.at || at >= ev.at + ev.duration) return service;
    service = static_cast<Duration>(static_cast<double>(service) *
                                    ev.service_factor);
    // Stuck-worker stall: a call landing inside the stall window waits for
    // the stall to end before service begins (deferred, never dropped).
    const Duration phase = (at - ev.at) % ev.stall_period;
    if (phase < ev.stall_duration) service += ev.stall_duration - phase;
    return service;
  }
};

enum class Mode { healthy, baseline, hedge_only, hedged_health };

struct Outcome {
  std::vector<Duration> response_us;
  std::uint64_t calls = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;

  double quantile(double q) const {
    if (response_us.empty()) return 0;
    auto sorted = response_us;
    std::sort(sorted.begin(), sorted.end());
    const auto idx =
        static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    return static_cast<double>(sorted[idx]);
  }
  double hedge_pct() const {
    return calls == 0 ? 0
                      : 100.0 * static_cast<double>(hedges) /
                            static_cast<double>(calls);
  }
};

Outcome drive(Mode mode) {
  const fault::GrayEvent ev = gray_event();
  std::vector<Replica> replicas;
  for (int i = 0; i < kReplicas; ++i)
    replicas.push_back({"loop:" + std::to_string(i), /*gray=*/i == 1 &&
                                                         mode != Mode::healthy});

  orb::EndpointHealthTracker tracker;
  const orb::HedgePolicy policy;  // defaults: budget 0.05, burst 16
  const bool hedging =
      mode == Mode::hedge_only || mode == Mode::hedged_health;
  Rng rng(kSeed ^ static_cast<std::uint64_t>(mode));

  Outcome o;
  std::uint64_t eligible = 0, issued = 0;
  std::vector<std::size_t> order(static_cast<std::size_t>(kReplicas));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::uint64_t i = 0;
  for (TimePoint now = 0; now < kRun; now += kInterArrival, ++i) {
    std::size_t primary, secondary;
    if (mode == Mode::hedged_health) {
      // Health-ranked placement: the Orb's ranking signal is dominated by
      // the latency EWMA (unknown endpoints score the 1000 µs fallback);
      // stable sort preserves index order on ties, as rank_by_health does.
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return tracker.latency_ewma(replicas[a].endpoint,
                                                     1000.0) <
                                tracker.latency_ewma(replicas[b].endpoint,
                                                     1000.0);
                       });
      primary = order[0];
      secondary = order[1];
    } else {
      primary = static_cast<std::size_t>(i % kReplicas);
      secondary = (primary + 1) % kReplicas;
    }

    const Duration primary_total = replicas[primary].serve(now, rng, ev);
    Duration response = primary_total;
    if (hedging) {
      ++eligible;
      // Hedge delay: the primary's estimated p95, clamped -- the same
      // computation invoke_hedged performs.
      Duration delay = tracker.p95(replicas[primary].endpoint);
      if (delay <= 0) delay = policy.default_delay;
      delay = std::clamp(delay, policy.min_delay, policy.max_delay);
      const bool budget_ok =
          issued < policy.burst ||
          static_cast<double>(issued + 1) <=
              policy.budget * static_cast<double>(eligible);
      if (primary_total > delay && budget_ok) {
        ++issued;
        ++o.hedges;
        const Duration hedge_total =
            delay + replicas[secondary].serve(now + delay, rng, ev);
        if (hedge_total < primary_total) {
          ++o.hedge_wins;
          response = hedge_total;
        }
        tracker.record(replicas[secondary].endpoint, hedge_total - delay);
      }
    }
    tracker.record(replicas[primary].endpoint, primary_total);
    o.response_us.push_back(response);
    ++o.calls;
  }
  return o;
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::healthy: return "healthy";
    case Mode::baseline: return "baseline-rr";
    case Mode::hedge_only: return "hedge-only";
    case Mode::hedged_health: return "hedged+health";
  }
  return "?";
}

}  // namespace

int main() {
  clc::bench::BenchReport report("grayfail");
  const fault::GrayEvent ev = gray_event();
  std::printf("E19: gray-failure tolerance -- hedged requests + health-aware "
              "binding\n");
  std::printf("(3 replicas, 1 gray from t=%llds: service x%.0f + %lld ms "
              "stall every %lld ms; %lld s run, call every %lld ms)\n\n",
              static_cast<long long>(ev.at / 1000000),
              ev.service_factor,
              static_cast<long long>(ev.stall_duration / 1000),
              static_cast<long long>(ev.stall_period / 1000),
              static_cast<long long>(kRun / 1000000),
              static_cast<long long>(kInterArrival / 1000));

  std::printf("%14s | %9s | %9s | %9s | %7s | %7s\n", "mode", "p50 ms",
              "p99 ms", "p999 ms", "hedge%", "vs-healthy-p99");
  std::printf("---------------+-----------+-----------+-----------+---------+"
              "---------\n");

  double healthy_p99 = 0, baseline_ratio = 0, tolerant_ratio = 0,
         tolerant_hedge_pct = 0;
  for (const Mode mode : {Mode::healthy, Mode::baseline, Mode::hedge_only,
                          Mode::hedged_health}) {
    const Outcome o = drive(mode);
    const double p99 = o.quantile(0.99);
    if (mode == Mode::healthy) healthy_p99 = p99;
    const double ratio = healthy_p99 > 0 ? p99 / healthy_p99 : 0;
    if (mode == Mode::baseline) baseline_ratio = ratio;
    if (mode == Mode::hedged_health) {
      tolerant_ratio = ratio;
      tolerant_hedge_pct = o.hedge_pct();
    }
    std::printf("%14s | %9.2f | %9.2f | %9.2f | %6.2f%% | %7.1fx\n",
                mode_name(mode), o.quantile(0.50) / 1000.0, p99 / 1000.0,
                o.quantile(0.999) / 1000.0, o.hedge_pct(), ratio);
    const std::string key = mode_name(mode);
    report.set(key + ".p50_us", o.quantile(0.50));
    report.set(key + ".p99_us", p99);
    report.set(key + ".p999_us", o.quantile(0.999));
    report.set(key + ".hedge_pct", o.hedge_pct());
    report.set(key + ".p99_vs_healthy", ratio);
    report.count(key + ".hedges", o.hedges);
    report.count(key + ".hedge_wins", o.hedge_wins);
  }

  std::printf("\nshape check: baseline p99 blows past 20x healthy (%.1fx); "
              "hedged+health holds within 3x (%.1fx) at %.2f%% hedge "
              "overhead (budget 5%%).\n",
              baseline_ratio, tolerant_ratio, tolerant_hedge_pct);
  report.set("headline.baseline_p99_vs_healthy", baseline_ratio);
  report.set("headline.tolerant_p99_vs_healthy", tolerant_ratio);
  report.set("headline.tolerant_hedge_pct", tolerant_hedge_pct);
  const bool pass =
      baseline_ratio > 20.0 && tolerant_ratio <= 3.0 && tolerant_hedge_pct <= 5.0;
  std::printf("E19 %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
