// E5 -- Peer-replicated MRMs and fault tolerance (§2.4.3).
//
// Claim: "To enhance fault-tolerance, the protocol must allow replicated
// peer MRMs per group ... the protocol must adapt by creating new replicas
// as needed and catching replica failures."
//
// We kill the root MRM of a 64-node network and measure the recovery time
// -- from the kill until a distributed query for a known component succeeds
// again -- as a function of the directory replica count. We then kill an
// interior (non-root) MRM and show queries keep working, and finally batter
// the network with random churn and report query availability.
#include <cstdio>

#include "bench_report.hpp"
#include "sim_world.hpp"
#include "util/rng.hpp"

using namespace clc;
using namespace clc::bench;

namespace {

double root_recovery_s(int replicas, std::uint64_t seed) {
  CohesionConfig cfg = bench_config(CohesionConfig::Mode::hierarchical);
  cfg.root_replicas = replicas;
  SimWorld w(cfg, seed);
  w.build(64);
  w.peer(40).components.push_back(
      ComponentSummary{"target.comp", Version{1, 0, 0}, true, 0});
  w.run_for(seconds(60));

  ComponentQuery q;
  q.name_pattern = "target.comp";
  if (w.query(20, q).empty()) return -1;  // sanity

  w.kill(0);  // the root
  const TimePoint killed_at = w.sim().now();
  for (int attempt = 0; attempt < 400; ++attempt) {
    w.run_for(cfg.heartbeat);
    if (!w.query(20, q).empty())
      return to_seconds(w.sim().now() - killed_at);
  }
  return -1;
}

double interior_mrm_recovery_s(std::uint64_t seed) {
  CohesionConfig cfg = bench_config(CohesionConfig::Mode::hierarchical, 4);
  SimWorld w(cfg, seed);
  w.build(64);
  w.peer(40).components.push_back(
      ComponentSummary{"target.comp", Version{1, 0, 0}, true, 0});
  w.run_for(seconds(60));
  // Kill the first interior MRM that is not the root and not the target's
  // own branch root.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < w.size(); ++i) {
    if (w.peer(i).node().is_mrm() && i != 40) {
      victim = i;
      break;
    }
  }
  if (victim == 0) return -1;
  w.kill(victim);
  const TimePoint killed_at = w.sim().now();
  ComponentQuery q;
  q.name_pattern = "target.comp";
  for (int attempt = 0; attempt < 200; ++attempt) {
    w.run_for(cfg.heartbeat);
    if (!w.query(20, q).empty())
      return to_seconds(w.sim().now() - killed_at);
  }
  return -1;
}

double availability_under_churn(double kill_fraction) {
  CohesionConfig cfg = bench_config(CohesionConfig::Mode::hierarchical);
  SimWorld w(cfg, 31);
  const std::size_t n = 64;
  w.build(n);
  for (std::size_t i = 0; i < n; ++i)
    w.peer(i).components.push_back(ComponentSummary{
        "svc." + std::to_string(i % 8), Version{1, 0, 0}, true, 0});
  w.run_for(seconds(60));

  Rng rng(77);
  const auto kills = static_cast<std::size_t>(kill_fraction * n);
  for (std::size_t k = 0; k < kills; ++k) {
    std::size_t victim;
    do {
      victim = 1 + rng.next_below(n - 1);  // never the root, for this row
    } while (!w.peer(victim).alive);
    w.kill(victim);
    w.run_for(seconds(4));
  }
  w.run_for(seconds(30));  // detection settles

  int ok = 0;
  constexpr int kQueries = 40;
  for (int i = 0; i < kQueries; ++i) {
    std::size_t from;
    do {
      from = rng.next_below(n);
    } while (!w.peer(from).alive);
    ComponentQuery q;
    q.name_pattern = "svc." + std::to_string(i % 8);
    ok += !w.query(from, q).empty();
  }
  return 100.0 * ok / kQueries;
}

}  // namespace

int main() {
  BenchReport report("fault_tolerance");
  std::printf("E5: fault tolerance -- root-MRM failover vs replica count "
              "(64 nodes)\n\n");
  std::printf("%9s | %12s %12s %12s\n", "replicas", "seed 1", "seed 2",
              "seed 3");
  std::printf("----------+---------------------------------------\n");
  for (int replicas : {1, 2, 4}) {
    std::printf("%9d |", replicas);
    for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
      const double t = root_recovery_s(replicas, seed);
      if (t < 0) {
        std::printf(" %11s", "no-recover");
      } else {
        std::printf(" %9.1f s", t);
      }
      report.set("root_recovery_s.replicas" + std::to_string(replicas) +
                     ".seed" + std::to_string(seed),
                 t);
    }
    std::printf("\n");
  }

  const double interior = interior_mrm_recovery_s(404);
  std::printf("\nE5b: interior MRM death (group size 4): recovery %.1f s\n",
              interior);
  report.set("interior_recovery_s", interior);

  std::printf("\nE5c: query availability after killing a fraction of nodes\n");
  std::printf("%12s | %12s\n", "killed", "availability");
  for (double f : {0.05, 0.15, 0.30}) {
    const double avail = availability_under_churn(f);
    std::printf("%11.0f%% | %10.0f%%\n", f * 100, avail);
    report.set("availability_pct.killed" +
                   std::to_string(static_cast<int>(f * 100)),
               avail);
  }
  std::printf("\nshape check: recovery within a few heartbeat multiples for "
              "any replica count >= 1; availability degrades gracefully "
              "under churn.\n");
  return 0;
}
