// E2 -- Distributed component queries (§2.4.3).
//
// Claim: the Distributed Registry resolves components network-wide; the
// hierarchical protocol does it with far fewer messages than a flat
// broadcast as the network grows. For each network size we install a target
// component on one node, let digests settle, then issue queries from random
// other nodes and count protocol messages and virtual latency per query.
#include <cstdio>

#include "bench_report.hpp"
#include "sim_world.hpp"
#include "util/rng.hpp"

using namespace clc;
using namespace clc::bench;

namespace {

struct Sample {
  double messages_per_query = 0;
  double bytes_per_query = 0;
  double latency_ms = 0;
  double hit_rate = 0;
};

Sample run(CohesionConfig::Mode mode, std::size_t n, int queries) {
  SimWorld w(bench_config(mode), 7);
  w.build(n);
  // The queried component lives on one "far" node; a few decoys elsewhere.
  w.peer(n - 1).components.push_back(
      ComponentSummary{"video.decoder", Version{2, 0, 0}, true, 0});
  w.peer(n / 2).components.push_back(
      ComponentSummary{"audio.mixer", Version{1, 0, 0}, true, 0});
  w.run_for(seconds(40));  // join + digest propagation

  Rng rng(13);
  Sample s;
  std::uint64_t hits = 0;
  for (int i = 0; i < queries; ++i) {
    const auto from = rng.next_below(n - 1);  // never the hosting node
    w.net().reset_stats();
    const TimePoint start = w.sim().now();
    ComponentQuery q;
    q.name_pattern = "video.decoder";
    auto result = w.query(from, q);
    hits += !result.empty();
    s.messages_per_query += static_cast<double>(w.net().stats().messages_sent);
    s.bytes_per_query += static_cast<double>(w.net().stats().bytes_sent);
    s.latency_ms += to_seconds(w.sim().now() - start) * 1000.0;
  }
  s.messages_per_query /= queries;
  s.bytes_per_query /= queries;
  s.latency_ms /= queries;
  s.hit_rate = static_cast<double>(hits) / queries;
  return s;
}

}  // namespace

int main() {
  BenchReport report("query");
  std::printf("E2: distributed component queries -- hierarchical vs flat "
              "broadcast\n");
  std::printf("(component hosted on 1 node; 30 queries from random nodes; "
              "messages counted per query, excluding steady-state traffic)\n\n");
  std::printf("%6s | %22s | %22s | %10s\n", "nodes",
              "hierarchical msgs/q", "flat-broadcast msgs/q", "hit rate");
  std::printf("-------+------------------------+------------------------+-----------\n");
  for (std::size_t n : {8u, 32u, 128u, 512u, 1024u}) {
    const Sample hier = run(CohesionConfig::Mode::hierarchical, n, 30);
    const Sample flat = run(CohesionConfig::Mode::flat_query, n, 30);
    std::printf("%6zu | %10.1f (%6.0f B) | %10.1f (%6.0f B) | %4.0f%%/%3.0f%%\n",
                n, hier.messages_per_query, hier.bytes_per_query,
                flat.messages_per_query, flat.bytes_per_query,
                hier.hit_rate * 100, flat.hit_rate * 100);
    const std::string suffix = ".n" + std::to_string(n);
    report.set("hierarchical.msgs_per_query" + suffix, hier.messages_per_query);
    report.set("hierarchical.bytes_per_query" + suffix, hier.bytes_per_query);
    report.set("hierarchical.hit_rate" + suffix, hier.hit_rate);
    report.set("flat.msgs_per_query" + suffix, flat.messages_per_query);
    report.set("flat.bytes_per_query" + suffix, flat.bytes_per_query);
    report.set("flat.hit_rate" + suffix, flat.hit_rate);
  }
  std::printf("\nE2b: query latency (virtual ms, same setup)\n");
  std::printf("%6s | %14s | %14s\n", "nodes", "hierarchical", "flat");
  for (std::size_t n : {8u, 128u, 1024u}) {
    const Sample hier = run(CohesionConfig::Mode::hierarchical, n, 20);
    const Sample flat = run(CohesionConfig::Mode::flat_query, n, 20);
    std::printf("%6zu | %11.1f ms | %11.1f ms\n", n, hier.latency_ms,
                flat.latency_ms);
    const std::string suffix = ".n" + std::to_string(n);
    report.set("hierarchical.latency_ms" + suffix, hier.latency_ms);
    report.set("flat.latency_ms" + suffix, flat.latency_ms);
  }
  std::printf("\nshape check: hierarchical messages grow ~O(depth), flat "
              "grows O(N).\n");
  return 0;
}
