// Shared harness for protocol benches: N CohesionNodes on the simulated
// network with periodic ticks, plus query/measure helpers.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/cohesion.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace clc::bench {

using core::CohesionConfig;
using core::CohesionNode;
using core::ComponentQuery;
using core::ComponentSummary;
using core::ProtoMessage;
using core::QueryHit;
using core::RegistryDigest;

class SimPeer : public sim::SimHost {
 public:
  SimPeer(NodeId id, CohesionConfig cfg, sim::SimNetwork& net,
          sim::Simulator& sim)
      : net_(net),
        sim_(sim),
        node_(id, cfg, [this, id](NodeId to, const ProtoMessage& m) {
          net_.send(id, to, m.encode());
        }) {
    node_.set_digest_provider([this] {
      RegistryDigest d;
      d.components = components;
      d.cpu_load = cpu_load;
      return d;
    });
  }

  void on_message(NodeId from, const Bytes& payload) override {
    (void)from;
    if (!alive) return;
    auto m = ProtoMessage::decode(payload);
    if (m.ok()) node_.on_message(*m, sim_.now());
  }

  CohesionNode& node() { return node_; }

  std::vector<ComponentSummary> components;
  double cpu_load = 0;
  bool alive = true;

 private:
  sim::SimNetwork& net_;
  sim::Simulator& sim_;
  CohesionNode node_;
};

class SimWorld {
 public:
  explicit SimWorld(CohesionConfig cfg, std::uint64_t seed = 1)
      : net_(sim_, seed), cfg_(cfg) {
    net_.set_link_model({.base_latency = milliseconds(5),
                         .jitter = milliseconds(1),
                         .bytes_per_second = 0,
                         .drop_probability = 0});
  }

  sim::Simulator& sim() { return sim_; }
  sim::SimNetwork& net() { return net_; }
  const CohesionConfig& config() const { return cfg_; }
  std::size_t size() const { return peers_.size(); }
  SimPeer& peer(std::size_t index) { return *peers_[index]; }

  void build(std::size_t n) {
    for (std::size_t i = 1; i <= n; ++i) {
      auto peer = std::make_unique<SimPeer>(NodeId{i}, cfg_, net_, sim_);
      SimPeer& ref = *peer;
      net_.attach(NodeId{i}, peer.get());
      peers_.push_back(std::move(peer));
      const Duration period = cfg_.heartbeat / 2;
      sim_.schedule_after(period, [this, &ref, period] { tick(ref, period); });
      if (i == 1) {
        ref.node().start_as_first(sim_.now());
      } else {
        sim_.schedule_after(milliseconds(2) * static_cast<Duration>(i),
                            [&ref, this] {
                              ref.node().start_joining(NodeId{1}, sim_.now());
                            });
      }
    }
  }

  void kill(std::size_t index) {
    peers_[index]->alive = false;
    net_.detach(peers_[index]->node().id());
  }

  void run_for(Duration d) { sim_.run_until(sim_.now() + d); }

  /// Synchronous query from peer `index`; returns hits (empty on timeout).
  std::vector<QueryHit> query(std::size_t index, const ComponentQuery& q) {
    std::vector<QueryHit> result;
    bool done = false;
    peers_[index]->node().query(q, sim_.now(), [&](std::vector<QueryHit> hits) {
      result = std::move(hits);
      done = true;
    });
    int guard = 0;
    while (!done && guard++ < 200000) {
      if (!sim_.step()) run_for(cfg_.heartbeat / 2);
    }
    return result;
  }

 private:
  void tick(SimPeer& p, Duration period) {
    if (!p.alive) return;
    p.node().on_tick(sim_.now());
    sim_.schedule_after(period, [this, &p, period] { tick(p, period); });
  }

  sim::Simulator sim_;
  sim::SimNetwork net_;
  CohesionConfig cfg_;
  std::vector<std::unique_ptr<SimPeer>> peers_;
};

inline CohesionConfig bench_config(CohesionConfig::Mode mode,
                                   std::size_t group_size = 8) {
  CohesionConfig cfg;
  cfg.mode = mode;
  cfg.heartbeat = seconds(2);
  cfg.group_size = group_size;
  cfg.query_timeout = seconds(4);
  return cfg;
}

}  // namespace clc::bench
