// E9 -- Packaging: compression for slow links, partial extraction for tiny
// devices (§2.3).
//
// Micro-benchmarks for the packaging pipeline (build/sign, open, verify,
// extract, PDA slice) plus a one-shot size table: full multi-platform
// package vs the slice a PDA actually transfers.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_gbench.hpp"
#include "bench_report.hpp"
#include "pkg/lzss.hpp"
#include "pkg/package.hpp"
#include "util/rng.hpp"

using namespace clc;
using namespace clc::pkg;

namespace {

/// A binary image with realistic structure (repeated motifs over a small
/// alphabet, like code/data sections) so compression has something to do.
Bytes structured_image(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes motif(256);
  for (auto& b : motif) b = static_cast<std::uint8_t>(rng.next_below(64));
  Bytes out;
  out.reserve(size);
  while (out.size() < size) {
    if (rng.chance(0.7)) {
      out.insert(out.end(), motif.begin(), motif.end());
    } else {
      for (int i = 0; i < 64; ++i)
        out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    }
  }
  out.resize(size);
  return out;
}

ComponentDescription description() {
  ComponentDescription d;
  d.name = "bench.component";
  d.version = {1, 2, 3};
  d.summary = "Benchmark subject";
  d.security.vendor = "bench";
  d.ports = {{PortKind::provides, "main", "bench::Main"}};
  return d;
}

Bytes build_package() {
  PackageBuilder b(description());
  b.set_idl("module bench { interface Main { void run(); }; };");
  b.add_binary({"x86_64", "linux", "clc", "entry", structured_image(262144, 1)});
  b.add_binary({"arm", "linux", "clc", "entry", structured_image(131072, 2)});
  b.add_binary({"sparc", "solaris", "clc", "entry",
                structured_image(196608, 3)});
  return b.build(bytes_of("bench-key")).value();
}

void BM_PackageBuildAndSign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_package());
  }
}
BENCHMARK(BM_PackageBuildAndSign)->Unit(benchmark::kMillisecond);

void BM_PackageOpen(benchmark::State& state) {
  const Bytes data = build_package();
  for (auto _ : state) {
    auto p = Package::open(data);
    if (!p.ok()) state.SkipWithError("open failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_PackageOpen)->Unit(benchmark::kMillisecond);

void BM_SignatureVerify(benchmark::State& state) {
  auto p = Package::open(build_package()).value();
  for (auto _ : state) {
    auto r = p.verify(bytes_of("bench-key"));
    if (!r.ok()) state.SkipWithError("verify failed");
  }
}
BENCHMARK(BM_SignatureVerify)->Unit(benchmark::kMillisecond);

void BM_BinaryExtract(benchmark::State& state) {
  auto p = Package::open(build_package()).value();
  for (auto _ : state) {
    auto bin = p.binary_for("x86_64", "linux", "clc");
    if (!bin.ok()) state.SkipWithError("extract failed");
  }
}
BENCHMARK(BM_BinaryExtract)->Unit(benchmark::kMillisecond);

void BM_PdaSlice(benchmark::State& state) {
  auto p = Package::open(build_package()).value();
  for (auto _ : state) {
    auto slice = p.slice_for_platform("arm", "linux", "clc");
    if (!slice.ok()) state.SkipWithError("slice failed");
  }
}
BENCHMARK(BM_PdaSlice)->Unit(benchmark::kMillisecond);

void BM_LzssCompress256K(benchmark::State& state) {
  const Bytes input = structured_image(262144, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lzss_compress(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_LzssCompress256K)->Unit(benchmark::kMillisecond);

void BM_LzssDecompress256K(benchmark::State& state) {
  const Bytes compressed = lzss_compress(structured_image(262144, 9));
  for (auto _ : state) {
    auto d = lzss_decompress(compressed);
    if (!d.ok()) state.SkipWithError("decompress failed");
  }
}
BENCHMARK(BM_LzssDecompress256K)->Unit(benchmark::kMillisecond);

void print_size_table(clc::bench::BenchReport& report) {
  const Bytes data = build_package();
  auto p = Package::open(data).value();
  std::uint64_t raw_total = 262144 + 131072 + 196608;
  std::printf("\nE9 size table: multi-platform package vs PDA slice\n");
  std::printf("  raw binaries (3 platforms):   %8llu bytes\n",
              static_cast<unsigned long long>(raw_total));
  std::printf("  packaged (compressed+signed): %8llu bytes (%.0f%% of raw)\n",
              static_cast<unsigned long long>(p.total_size()),
              100.0 * static_cast<double>(p.total_size()) /
                  static_cast<double>(raw_total));
  const auto slice = p.slice_for_platform("arm", "linux", "clc").value();
  std::printf("  PDA slice (arm only):         %8zu bytes (%.0f%% of full "
              "package)\n",
              slice.size(),
              100.0 * static_cast<double>(slice.size()) /
                  static_cast<double>(p.total_size()));
  std::printf("  partial-fetch accounting:     %8llu bytes\n\n",
              static_cast<unsigned long long>(
                  p.partial_fetch_size("arm", "linux", "clc")));
  report.set("raw_bytes", static_cast<double>(raw_total));
  report.set("packaged_bytes", static_cast<double>(p.total_size()));
  report.set("pda_slice_bytes", static_cast<double>(slice.size()));
  report.set("partial_fetch_bytes",
             static_cast<double>(p.partial_fetch_size("arm", "linux", "clc")));
}

}  // namespace

int main(int argc, char** argv) {
  clc::bench::BenchReport report("packaging");
  print_size_table(report);
  clc::bench::run_benchmarks_with_report(argc, argv, report);
  return 0;
}
