// E18 -- Overload robustness: admission control, backpressure and the
// closed-loop LoadManager under open-loop traffic (DESIGN.md §16).
//
// Claim: under offered load beyond capacity a naive deployment collapses
// (every queued call eventually blows its deadline, goodput -> 0), while
// admission control + CoDel shedding + the LoadManager keep goodput near
// the cluster's service capacity and keep latency of admitted work bounded
// -- including through a mid-run crash and a mid-run partition.
//
// Setup: 3 nodes, each modelled as a fluid server draining 1 µs of service
// work per µs (capacity ~= 1 / mean_demand calls/s). An OpenLoopGenerator
// offers Poisson arrivals from 200k virtual users with a heavy-tail cost
// mix (90% 1x, 9% 10x, 1% 100x; mean 560 µs). A call is "good" if admitted
// and its modelled response time (queue delay at admission + service time)
// is within the 250 ms deadline.
//
//   sweep    -- offered load 0.5x..3x aggregate capacity, all nodes hosting:
//               baseline (admission unbounded, no controller) vs controlled
//               (admission + CoDel + LoadManager). p50/p99/p999, shed%,
//               goodput.
//   hotspot  -- 2x overload aimed at ONE hosting node; the LoadManager
//               replicates the hot component toward idle peers and goodput
//               climbs from one node's capacity to >= 80% of the cluster's.
//   crash    -- 2x overload, node 3 crashes at t=10s and restarts at t=20s;
//               control traffic keeps flowing (zero control-plane sheds)
//               and the LoadManager re-replicates onto the returned node.
//   partition-- 2x overload, node 3 isolated for 10s; the majority side
//               keeps serving and goodput tracks surviving capacity.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "core/load_manager.hpp"
#include "core/node.hpp"
#include "sim/openloop.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;

namespace {

constexpr int kNodes = 3;
constexpr Duration kDeadline = milliseconds(250);
constexpr Duration kTick = milliseconds(100);
const std::vector<sim::RequestClass> kMix = sim::heavy_tail_mix();

double mean_demand_us() {
  double total_w = 0, acc = 0;
  for (const auto& c : kMix) {
    total_w += c.weight;
    acc += c.weight * static_cast<double>(c.mean_cost);
  }
  return acc / total_w;
}

// Calls/second one node drains at drain_rate 1.0.
double node_capacity_hz() { return 1e6 / mean_demand_us(); }

AdmissionConfig controlled_admission() {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.drain_rate = 1.0;
  cfg.max_queue_delay = milliseconds(100);
  cfg.codel_target = milliseconds(5);
  cfg.codel_interval = milliseconds(100);
  return cfg;
}

// "Baseline": the fluid model still tracks the queue, but the bounds sit at
// an hour so nothing is ever shed -- a plain unbounded FIFO server.
AdmissionConfig unbounded_admission() {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.drain_rate = 1.0;
  cfg.max_queue_delay = seconds(3600);
  cfg.min_queue_delay = seconds(3600);
  cfg.codel_target = seconds(3600);
  return cfg;
}

LoadManagerConfig bench_lm_config() {
  LoadManagerConfig cfg;
  cfg.interval = seconds(1);
  cfg.cooldown = seconds(2);
  cfg.replicate_above = milliseconds(10);
  return cfg;
}

struct World {
  explicit World(bool instances_everywhere) {
    CohesionConfig cohesion;
    cohesion.heartbeat = seconds(1);
    net = std::make_unique<LocalNetwork>(cohesion);
    for (int i = 0; i < kNodes; ++i) {
      NodeProfile p;
      p.cpu_power = 1.0;
      nodes.push_back(&net->add_node(p));
    }
    net->settle();
    for (Node* n : nodes) (void)n->install(clc::testing::calculator_package());
    net->settle();
    const int hosts = instances_everywhere ? kNodes : 1;
    for (int i = 0; i < hosts; ++i)
      (void)nodes[static_cast<std::size_t>(i)]->container().create(
          "demo.calculator", VersionConstraint{});
  }

  /// Live nodes currently hosting at least one instance.
  std::vector<Node*> hosts() const {
    std::vector<Node*> out;
    for (Node* n : net->nodes())
      if (!n->container().instance_ids().empty()) out.push_back(n);
    return out;
  }

  std::unique_ptr<LocalNetwork> net;
  std::vector<Node*> nodes;
};

struct Outcome {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t unroutable = 0;
  std::uint64_t good = 0;  // admitted and finished within the deadline
  std::vector<Duration> response_us;  // response times of admitted calls
  std::vector<double> goodput_timeline;  // per-second goodput, calls/s
  std::uint64_t control_sheds = 0;
  std::uint64_t replications = 0;
  std::uint64_t migrations = 0;
  std::vector<std::string> actions;

  double quantile(double q) const {
    if (response_us.empty()) return 0;
    auto sorted = response_us;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return static_cast<double>(sorted[idx]);
  }
  double goodput_hz(Duration run) const {
    return static_cast<double>(good) / to_seconds(run);
  }
};

/// Drive `multiple` x aggregate-capacity offered load for `run` virtual
/// seconds. Events injects crash/partition actions keyed on elapsed time.
Outcome drive(World& world, double multiple, Duration run, bool controlled,
              const std::function<void(World&, Duration)>& events = {}) {
  sim::OpenLoopConfig wl;
  wl.arrival_rate_hz = multiple * node_capacity_hz() * kNodes;
  wl.virtual_users = 200000;
  wl.mix = kMix;
  wl.seed = 0xE18ULL ^ static_cast<std::uint64_t>(multiple * 1000) ^
            (controlled ? 0x1 : 0x0);

  for (Node* n : world.nodes)
    n->admission().configure(controlled ? controlled_admission()
                                        : unbounded_admission());

  LoadManager lm(*world.net, bench_lm_config());
  const TimePoint start = world.net->now();
  sim::OpenLoopGenerator gen(wl, start);

  Outcome o;
  std::vector<Node*> hosts = world.hosts();
  std::size_t rr = 0;
  std::uint64_t good_this_second = 0;
  Duration last_bucket = 0;
  // The net clock is authoritative: orb retry backoffs inside the harness
  // advance it past our tick schedule (e.g. while peers chase a crashed
  // node), and arrival timestamps must never fall behind the admission
  // models' drain horizon.
  while (world.net->now() - start < run) {
    if (events) events(world, world.net->now() - start);
    world.net->advance(kTick, kTick);
    const TimePoint now = world.net->now();
    const Duration elapsed = now - start;
    hosts = world.hosts();
    for (const sim::Arrival& a : gen.drain_until(now)) {
      ++o.offered;
      if (hosts.empty()) {
        ++o.unroutable;
        continue;
      }
      Node* target = hosts[rr++ % hosts.size()];
      AdmissionController& ctrl = target->admission();
      const Duration wait = ctrl.queue_delay(a.at);
      if (!ctrl.admit(CallClass::application, a.at, a.cost).ok()) {
        ++o.shed;
        continue;
      }
      ++o.admitted;
      const Duration response = wait + a.cost;  // drain_rate 1.0
      o.response_us.push_back(response);
      if (response <= kDeadline) {
        ++o.good;
        ++good_this_second;
      }
    }
    if (controlled) lm.tick(now);
    while (elapsed - last_bucket >= seconds(1)) {
      o.goodput_timeline.push_back(static_cast<double>(good_this_second));
      good_this_second = 0;
      last_bucket += seconds(1);
    }
  }
  for (Node* n : world.nodes) o.control_sheds += n->admission().shed_control_count();
  o.replications = lm.replications();
  o.migrations = lm.migrations();
  o.actions = lm.action_log();
  return o;
}

void print_row(const char* mode, double multiple, const Outcome& o,
               Duration run, clc::bench::BenchReport& report) {
  const double capacity = node_capacity_hz() * kNodes;
  const double goodput_ratio = o.goodput_hz(run) / capacity;
  const double shed_pct = o.offered == 0
                              ? 0
                              : 100.0 * static_cast<double>(o.shed) /
                                    static_cast<double>(o.offered);
  std::printf("%10s | %5.1fx | %8.1f | %8.1f | %8.1f | %6.1f%% | %7.1f%%\n",
              mode, multiple, o.quantile(0.50) / 1000.0,
              o.quantile(0.99) / 1000.0, o.quantile(0.999) / 1000.0, shed_pct,
              100.0 * goodput_ratio);
  char key[64];
  std::snprintf(key, sizeof key, "sweep.%s.x%.1f", mode, multiple);
  report.set(std::string(key) + ".p50_us", o.quantile(0.50));
  report.set(std::string(key) + ".p99_us", o.quantile(0.99));
  report.set(std::string(key) + ".p999_us", o.quantile(0.999));
  report.set(std::string(key) + ".shed_pct", shed_pct);
  report.set(std::string(key) + ".goodput_ratio", goodput_ratio);
}

}  // namespace

int main() {
  clc::bench::BenchReport report("overload");
  const double capacity = node_capacity_hz() * kNodes;
  std::printf("E18: overload robustness -- open-loop traffic vs admission + "
              "load management\n");
  std::printf("(3 nodes, capacity %.0f calls/s aggregate, heavy-tail mix "
              "mean %.0f us, deadline %lld ms)\n\n",
              capacity, mean_demand_us(),
              static_cast<long long>(kDeadline / 1000));

  // ---------------------------------------------------------------- sweep
  const Duration kSweepRun = seconds(10);
  std::printf("load sweep (all nodes hosting, 10s per point):\n");
  std::printf("%10s | %6s | %8s | %8s | %8s | %7s | %8s\n", "mode", "load",
              "p50 ms", "p99 ms", "p999 ms", "shed", "goodput");
  std::printf("-----------+--------+----------+----------+----------+---------+---------\n");
  double controlled_x2 = 0, baseline_x2 = 0;
  for (const double multiple : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    for (const bool controlled : {false, true}) {
      World world(/*instances_everywhere=*/true);
      const Outcome o = drive(world, multiple, kSweepRun, controlled);
      print_row(controlled ? "controlled" : "baseline", multiple, o,
                kSweepRun, report);
      const double ratio = o.goodput_hz(kSweepRun) / capacity;
      if (multiple == 2.0 && controlled) controlled_x2 = ratio;
      if (multiple == 2.0 && !controlled) baseline_x2 = ratio;
    }
  }

  // -------------------------------------------------------------- hotspot
  std::printf("\nhotspot (2x overload, one hosting node, LoadManager "
              "replicates, 12s):\n");
  {
    World world(/*instances_everywhere=*/false);
    const Duration kRun = seconds(12);
    const Outcome o = drive(world, 2.0, kRun, /*controlled=*/true);
    double tail = 0;
    const std::size_t n = o.goodput_timeline.size();
    for (std::size_t i = n >= 3 ? n - 3 : 0; i < n; ++i)
      tail += o.goodput_timeline[i];
    tail /= 3.0;
    std::printf("  replications=%llu  final hosts=%zu  last-3s goodput "
                "%.1f/s (%.1f%% of cluster capacity)\n",
                static_cast<unsigned long long>(o.replications),
                world.hosts().size(), tail, 100.0 * tail / capacity);
    for (std::size_t i = 0; i < o.actions.size() && i < 6; ++i)
      std::printf("    [lm] %s\n", o.actions[i].c_str());
    report.set("hotspot.replications", static_cast<double>(o.replications));
    report.set("hotspot.final_hosts",
               static_cast<double>(world.hosts().size()));
    report.set("hotspot.tail_goodput_ratio", tail / capacity);
  }

  // ---------------------------------------------------------------- crash
  std::printf("\nmid-run crash (2x overload, node 3 down t=10s..20s, 30s):\n");
  {
    World world(/*instances_everywhere=*/true);
    const NodeId victim = world.nodes[2]->id();
    bool crashed = false, restarted = false;
    const Outcome o = drive(
        world, 2.0, seconds(30), /*controlled=*/true,
        [&](World& w, Duration elapsed) {
          if (!crashed && elapsed >= seconds(10)) {
            w.net->crash(victim);
            crashed = true;
          }
          if (!restarted && elapsed >= seconds(20)) {
            w.net->restart(victim);
            restarted = true;
          }
        });
    const double ratio = o.goodput_hz(seconds(30)) / capacity;
    // 10 of 30 seconds run on 2/3 of the fleet.
    const double live_ratio = (20.0 + 10.0 * 2.0 / 3.0) / 30.0;
    std::printf("  goodput %.1f%% of nominal capacity (%.1f%% of live "
                "capacity), control-plane sheds=%llu, re-replications=%llu\n",
                100.0 * ratio, 100.0 * ratio / live_ratio,
                static_cast<unsigned long long>(o.control_sheds),
                static_cast<unsigned long long>(o.replications));
    report.set("crash.goodput_ratio", ratio);
    report.set("crash.goodput_vs_live", ratio / live_ratio);
    report.set("crash.control_sheds", static_cast<double>(o.control_sheds));
    report.set("crash.replications", static_cast<double>(o.replications));
  }

  // ------------------------------------------------------------ partition
  std::printf("\nmid-run partition (2x overload, node 3 isolated t=10s..20s, "
              "30s):\n");
  {
    World world(/*instances_everywhere=*/true);
    bool cut = false, healed = false;
    const Outcome o = drive(
        world, 2.0, seconds(30), /*controlled=*/true,
        [&](World& w, Duration elapsed) {
          if (!cut && elapsed >= seconds(10)) {
            w.net->partition({w.nodes[0]->id(), w.nodes[1]->id()},
                             {w.nodes[2]->id()});
            cut = true;
          }
          if (!healed && elapsed >= seconds(20)) {
            w.net->heal_partition();
            healed = true;
          }
        });
    const double ratio = o.goodput_hz(seconds(30)) / capacity;
    std::printf("  goodput %.1f%% of nominal capacity, control-plane "
                "sheds=%llu\n",
                100.0 * ratio, static_cast<unsigned long long>(o.control_sheds));
    report.set("partition.goodput_ratio", ratio);
    report.set("partition.control_sheds",
               static_cast<double>(o.control_sheds));
  }

  std::printf("\nshape check: baseline goodput collapses past 1x (%.1f%% at "
              "2x); the controller holds >= 80%% (%.1f%% at 2x) and keeps "
              "p99 of admitted work bounded.\n",
              100.0 * baseline_x2, 100.0 * controlled_x2);
  report.set("headline.baseline_x2_goodput_ratio", baseline_x2);
  report.set("headline.controlled_x2_goodput_ratio", controlled_x2);
  return 0;
}
