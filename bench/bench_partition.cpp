// E15 -- Partition tolerance: availability through a split, convergence
// after the heal, and the byte price of reconciliation (DESIGN.md §13).
//
// Five nodes, a 3/2 split. A stateful counter lives on the minority side
// (node 2) and checkpoints to majority-side holders before the cut; a
// second counter lives on the majority side. During the split we probe
// both sides once per 250 ms of virtual time:
//
//   majority availability   intra-majority invocations that succeed -- the
//                           quorum side must keep serving (>= 99%);
//   minority availability   intra-minority invocations -- degraded mode
//                           keeps local service alive behind the cut;
//   restore                 split -> the majority restores the stranded
//                           instance from its freshest checkpoint.
//
// After the heal we measure time to a single root with every node rejoined,
// plus the bytes spent reconciling, and compare the soft-consistency
// protocol against the strong baseline over the identical scenario.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "core/node.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;
using clc::bench::BenchReport;
using clc::testing::counter_package;

namespace {

CohesionConfig cohesion_config(CohesionConfig::Mode mode) {
  CohesionConfig cfg;
  cfg.mode = mode;
  cfg.heartbeat = seconds(1);
  cfg.group_size = 8;
  cfg.query_timeout = seconds(3);
  return cfg;
}

struct Scenario {
  CohesionConfig::Mode mode = CohesionConfig::Mode::hierarchical;
  Duration split = seconds(35);
};

struct Outcome {
  double majority_avail = 0;  // fraction of successful majority-side calls
  double minority_avail = 0;  // same, minority side (degraded mode)
  double restore_s = -1;      // split -> stranded instance restored
  double converge_s = -1;     // heal -> one root, everyone joined
  std::uint64_t split_bytes = 0;  // transport bytes while cut
  std::uint64_t heal_bytes = 0;   // transport bytes reconciling
};

constexpr Duration kProbePeriod = milliseconds(250);
constexpr Duration kHealHorizon = seconds(40);

Outcome run(const Scenario& s) {
  FailoverConfig failover;
  failover.checkpoint_interval = seconds(2);
  failover.replicas = 2;
  LocalNetwork net(cohesion_config(s.mode), failover);
  std::vector<Node*> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(&net.add_node());
  net.settle();

  // Minority-side state: counter on node 2, checkpointed across the future
  // cut. Majority-side state: counter on node 4, probed from node 3.
  Node& origin = *nodes[1];
  Node& majority_host = *nodes[3];
  Node& majority_client = *nodes[2];
  if (!origin.install(counter_package()).ok()) return {};
  if (!majority_host.install(counter_package()).ok()) return {};
  // The probing client needs the interface definitions to marshal calls;
  // installing registers the IDL without activating an instance.
  if (!majority_client.install(counter_package()).ok()) return {};
  auto stranded = origin.acquire_local("demo.counter", VersionConstraint{});
  auto served =
      majority_host.acquire_local("demo.counter", VersionConstraint{});
  if (!stranded.ok() || !served.ok()) return {};
  for (int i = 0; i < 7; ++i)
    (void)origin.orb().call(stranded->primary, "increment");
  net.advance(seconds(5));  // ship at least one checkpoint to the holders

  const std::vector<NodeId> minority{nodes[0]->id(), nodes[1]->id()};
  const std::vector<NodeId> majority{nodes[2]->id(), nodes[3]->id(),
                                     nodes[4]->id()};
  net.transport().reset_stats();
  net.partition(minority, majority);
  const TimePoint cut_at = net.now();

  Outcome out;
  std::uint64_t maj_ok = 0, maj_total = 0, min_ok = 0, min_total = 0;
  while (net.now() - cut_at < s.split) {
    net.advance(kProbePeriod, kProbePeriod);
    ++maj_total;
    if (majority_client.orb()
            .call(served->primary, "increment", {}, {.idempotent = true})
            .ok())
      ++maj_ok;
    ++min_total;
    if (origin.orb().call(stranded->primary, "value", {}, {.idempotent = true})
            .ok())
      ++min_ok;
    if (out.restore_s < 0) {
      std::uint64_t restored = 0;
      for (std::size_t i = 2; i < nodes.size(); ++i)
        restored += nodes[i]
                        ->metrics()
                        .counter("failover.instances_restored")
                        .value();
      if (restored > 0) out.restore_s = to_seconds(net.now() - cut_at);
    }
  }
  out.majority_avail =
      maj_total == 0 ? 0 : static_cast<double>(maj_ok) / maj_total;
  out.minority_avail =
      min_total == 0 ? 0 : static_cast<double>(min_ok) / min_total;
  out.split_bytes = net.transport().stats().bytes;

  net.transport().reset_stats();
  net.heal_partition();
  const TimePoint healed_at = net.now();
  while (net.now() - healed_at < kHealHorizon) {
    net.advance(milliseconds(500), milliseconds(500));
    if (out.converge_s < 0) {
      std::size_t roots = 0;
      bool all_joined = true;
      for (Node* n : nodes) {
        roots += n->cohesion().is_root() ? 1u : 0u;
        all_joined &= n->cohesion().joined();
      }
      if (roots == 1 && all_joined)
        out.converge_s = to_seconds(net.now() - healed_at);
    }
  }
  out.heal_bytes = net.transport().stats().bytes;
  return out;
}

}  // namespace

int main() {
  BenchReport report("partition");
  std::printf("E15: partition tolerance -- availability through a 3/2 split, "
              "reconciliation after the heal\n(5 nodes, minority-stranded "
              "counter checkpointed across the cut, 250 ms probes)\n\n");

  std::printf("E15a: availability and recovery vs split duration (soft)\n");
  std::printf("%7s | %9s | %9s | %9s | %10s | %10s\n", "split", "majority",
              "minority", "restore", "converge", "heal bytes");
  std::printf("--------+-----------+-----------+-----------+------------+"
              "-----------\n");
  for (int secs : {20, 35, 50}) {
    Scenario s;
    s.split = seconds(secs);
    const Outcome o = run(s);
    std::printf("%6ds | %8.1f%% | %8.1f%% | %7.2f s | %8.2f s | %10llu\n",
                secs, 100 * o.majority_avail, 100 * o.minority_avail,
                o.restore_s, o.converge_s,
                static_cast<unsigned long long>(o.heal_bytes));
    const std::string tag = "split_" + std::to_string(secs) + "s.";
    report.set(tag + "majority_availability", o.majority_avail);
    report.set(tag + "minority_availability", o.minority_avail);
    report.set(tag + "restore_s", o.restore_s);
    report.set(tag + "converge_s", o.converge_s);
    report.count(tag + "split_bytes", o.split_bytes);
    report.count(tag + "heal_bytes", o.heal_bytes);
    if (secs == 35)
      report.set("majority_availability_ge_99",
                 o.majority_avail >= 0.99 ? 1.0 : 0.0);
  }

  std::printf("\nE15b: reconciliation bytes, soft vs strong baseline "
              "(35 s split)\n");
  Scenario soft_s;
  Scenario strong_s;
  strong_s.mode = CohesionConfig::Mode::strong;
  const Outcome soft = run(soft_s);
  const Outcome strong = run(strong_s);
  std::printf("%9s | %11s | %10s | %10s\n", "protocol", "split bytes",
              "heal bytes", "converge");
  std::printf("----------+-------------+------------+-----------\n");
  std::printf("%9s | %11llu | %10llu | %8.2f s\n", "soft",
              static_cast<unsigned long long>(soft.split_bytes),
              static_cast<unsigned long long>(soft.heal_bytes),
              soft.converge_s);
  std::printf("%9s | %11llu | %10llu | %8.2f s\n", "strong",
              static_cast<unsigned long long>(strong.split_bytes),
              static_cast<unsigned long long>(strong.heal_bytes),
              strong.converge_s);
  report.count("soft.heal_bytes", soft.heal_bytes);
  report.count("strong.heal_bytes", strong.heal_bytes);
  report.set("soft_beats_strong_heal_bytes",
             soft.heal_bytes < strong.heal_bytes ? 1.0 : 0.0);

  std::printf("\nshape check: the quorum side stays >= 99%% available "
              "through the split while the minority keeps serving its own "
              "components in degraded mode; restore time tracks death "
              "detection, convergence lands within a few heartbeats of the "
              "heal, and soft-consistency reconciliation spends fewer bytes "
              "than the strong baseline.\n");
  return 0;
}
