// E13 -- Crash failover: time-to-recover and the lost-invocation window
// (DESIGN.md §11).
//
// A stateful counter instance lives on a leaf node that is checkpointing to
// R peer holders every `interval`. A driver applies 4 updates/s, the host
// crashes mid-interval, and we measure on virtual time:
//
//   recover   crash -> a holder re-instantiates the instance from its
//             freshest checkpoint (failover.instances_restored fires);
//   window    crash -> a remote client's idempotent invocation succeeds
//             again (stale-ref failure, re-resolve, call the new home);
//   lost      updates applied after the last shipped checkpoint -- the
//             state the failover could not save.
//
// Three sweeps: checkpoint interval (recovery point vs bandwidth), replica
// group size R (durability vs shipping cost), and the soft-consistency
// protocol vs the strong-consistency baseline carrying the same failover
// load (the §2.4.3 bandwidth claim must survive crash traffic).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "core/node.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;
using clc::bench::BenchReport;
using clc::testing::counter_package;

namespace {

CohesionConfig cohesion_config(CohesionConfig::Mode mode) {
  CohesionConfig cfg;
  cfg.mode = mode;
  cfg.heartbeat = seconds(1);
  cfg.group_size = 4;
  cfg.query_timeout = seconds(3);
  return cfg;
}

struct Scenario {
  Duration interval = seconds(2);
  int replicas = 2;
  CohesionConfig::Mode mode = CohesionConfig::Mode::hierarchical;
  std::size_t nodes = 5;
};

struct Outcome {
  double recover_s = -1;   // crash -> instance restored on a holder
  double window_s = -1;    // crash -> client invocation succeeds again
  std::int64_t lost = -1;  // updates missing from the restored state
  std::uint64_t bytes = 0;  // transport bytes over the fixed horizon
};

constexpr Duration kUpdatePeriod = milliseconds(250);  // 4 updates/s
constexpr Duration kUpdatePhase = seconds(20) + milliseconds(250);
constexpr Duration kPostCrash = seconds(40);  // recovery + steady tail

Outcome run(const Scenario& s) {
  FailoverConfig failover;
  failover.checkpoint_interval = s.interval;
  failover.replicas = s.replicas;
  LocalNetwork net(cohesion_config(s.mode), failover);
  std::vector<Node*> nodes;
  for (std::size_t i = 0; i < s.nodes; ++i) nodes.push_back(&net.add_node());
  net.settle();

  // The victim is the highest-id leaf; holders are the lowest-id peers, so
  // a client off both sets sees the failure purely through the wire.
  Node& victim = *nodes.back();
  Node& client = *nodes[s.nodes - 2];
  if (!victim.install(counter_package()).ok()) return {};
  auto bound = victim.acquire_local("demo.counter", VersionConstraint{});
  if (!bound.ok()) return {};

  const TimePoint t0 = net.now();
  net.transport().reset_stats();
  const TimePoint horizon = t0 + kUpdatePhase + kPostCrash;

  std::int64_t applied = 0;
  while (net.now() - t0 < kUpdatePhase) {
    if (victim.orb().call(bound->primary, "increment").ok()) ++applied;
    net.advance(kUpdatePeriod, kUpdatePeriod);
  }

  const TimePoint crashed_at = net.now();
  net.crash(victim.id());

  Outcome out;
  TimePoint next_probe = crashed_at + seconds(1);
  while (net.now() < horizon) {
    net.advance(milliseconds(500), milliseconds(500));
    if (out.recover_s < 0) {
      std::uint64_t restored = 0;
      for (Node* n : nodes)
        if (!net.is_crashed(n->id()))
          restored +=
              n->metrics().counter("failover.instances_restored").value();
      if (restored > 0)
        out.recover_s = to_seconds(net.now() - crashed_at);
    }
    if (out.window_s < 0 && net.now() >= next_probe) {
      next_probe = net.now() + seconds(1);
      auto rebound =
          client.resolve("demo.counter", VersionConstraint{}, Binding::remote);
      if (rebound.ok()) {
        auto value = client.orb().call(rebound->primary, "value",
                                       {}, {.idempotent = true});
        if (value.ok()) {
          out.window_s = to_seconds(net.now() - crashed_at);
          out.lost = applied - *value->to_int();
        }
      }
    }
  }
  out.bytes = net.transport().stats().bytes;
  return out;
}

}  // namespace

int main() {
  BenchReport report("failover");
  std::printf("E13: crash failover -- recovery time and lost-invocation "
              "window\n(5 nodes, 4 updates/s, crash at t+%.2fs, 60s virtual "
              "horizon)\n\n", to_seconds(kUpdatePhase));

  std::printf("E13a: vs checkpoint interval (R=2, soft consistency)\n");
  std::printf("%9s | %10s | %10s | %6s | %10s\n", "interval", "recover",
              "window", "lost", "bytes");
  std::printf("----------+------------+------------+--------+-----------\n");
  for (int secs : {1, 2, 4, 8}) {
    Scenario s;
    s.interval = seconds(secs);
    const Outcome o = run(s);
    std::printf("%8ds | %8.2f s | %8.2f s | %6lld | %10llu\n", secs,
                o.recover_s, o.window_s, static_cast<long long>(o.lost),
                static_cast<unsigned long long>(o.bytes));
    const std::string tag = "interval_" + std::to_string(secs) + "s.";
    report.set(tag + "recover_s", o.recover_s);
    report.set(tag + "window_s", o.window_s);
    report.set(tag + "lost_updates", static_cast<double>(o.lost));
    report.count(tag + "bytes", o.bytes);
  }

  std::printf("\nE13b: vs replica group size (interval 2s)\n");
  std::printf("%9s | %10s | %10s | %10s\n", "replicas", "recover", "window",
              "bytes");
  std::printf("----------+------------+------------+-----------\n");
  for (int r : {1, 2, 3}) {
    Scenario s;
    s.replicas = r;
    const Outcome o = run(s);
    std::printf("%9d | %8.2f s | %8.2f s | %10llu\n", r, o.recover_s,
                o.window_s, static_cast<unsigned long long>(o.bytes));
    const std::string tag = "replicas_" + std::to_string(r) + ".";
    report.set(tag + "recover_s", o.recover_s);
    report.set(tag + "window_s", o.window_s);
    report.count(tag + "bytes", o.bytes);
  }

  std::printf("\nE13c: soft consistency vs strong baseline (interval 2s, "
              "R=2)\n");
  Scenario soft_s;
  Scenario strong_s;
  strong_s.mode = CohesionConfig::Mode::strong;
  const Outcome soft = run(soft_s);
  const Outcome strong = run(strong_s);
  std::printf("%9s | %10s | %10s | %10s\n", "protocol", "recover", "window",
              "bytes");
  std::printf("----------+------------+------------+-----------\n");
  std::printf("%9s | %8.2f s | %8.2f s | %10llu\n", "soft", soft.recover_s,
              soft.window_s, static_cast<unsigned long long>(soft.bytes));
  std::printf("%9s | %8.2f s | %8.2f s | %10llu\n", "strong",
              strong.recover_s, strong.window_s,
              static_cast<unsigned long long>(strong.bytes));
  report.set("soft.recover_s", soft.recover_s);
  report.count("soft.bytes", soft.bytes);
  report.set("strong.recover_s", strong.recover_s);
  report.count("strong.bytes", strong.bytes);
  report.set("soft_beats_strong_bytes",
             soft.bytes < strong.bytes ? 1.0 : 0.0);

  std::printf("\nshape check: shorter checkpoint intervals shrink the lost-"
              "update window at the price of bytes; recovery time is set by "
              "death detection, not interval; soft consistency carries the "
              "same failover load on fewer bytes than the strong baseline.\n");
  return 0;
}
