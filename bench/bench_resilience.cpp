// E12 -- invocation resilience under injected transport faults (§10).
//
// Claim: with per-invocation deadlines, idempotent retry with exponential
// backoff, and a per-endpoint circuit breaker, a CORBA-LC client keeps its
// invocation success rate near 100% across realistic loss rates, at the
// cost of bounded extra (virtual) latency -- while a policy-free client
// degrades linearly with the loss rate. We also measure the wall-clock
// overhead of the disarmed FaultyTransport decorator and of the disabled
// policies, which must be negligible.
//
// The fault schedule is a deterministic function of (seed, sequence), time
// is a ManualClock and backoff/injected delays advance it virtually, so
// every row of this bench is exactly reproducible.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_report.hpp"
#include "fault/faulty_transport.hpp"
#include "fault/plan.hpp"
#include "orb/orb.hpp"
#include "orb/resilience.hpp"
#include "orb/transport.hpp"
#include "util/clock.hpp"

using namespace clc;
using namespace clc::bench;

namespace {

constexpr const char* kCalcIdl = R"(
module f { interface Calc { long add(in long a, in long b); }; };
)";

/// Client/server Orb pair whose client traffic crosses a FaultyTransport,
/// with all time virtual (deadlines, backoff and injected delays advance
/// the ManualClock instead of blocking).
struct Harness {
  std::shared_ptr<idl::InterfaceRepository> repo;
  std::shared_ptr<orb::LoopbackNetwork> net;
  std::shared_ptr<fault::FaultyTransport> faults;
  std::unique_ptr<orb::Orb> server;
  std::unique_ptr<orb::Orb> client;
  ManualClock clock;
  orb::ObjectRef calc;
};

std::unique_ptr<Harness> make_harness(const orb::InvocationPolicies& policies) {
  auto h = std::make_unique<Harness>();
  h->repo = std::make_shared<idl::InterfaceRepository>();
  (void)h->repo->register_idl(kCalcIdl);
  h->net = std::make_shared<orb::LoopbackNetwork>();
  h->faults = std::make_shared<fault::FaultyTransport>(h->net);
  h->server = std::make_unique<orb::Orb>(NodeId{1}, h->repo);
  h->client = std::make_unique<orb::Orb>(NodeId{2}, h->repo);
  auto* server = h->server.get();
  h->server->set_endpoint(h->net->register_endpoint(
      [server](BytesView frame) { return server->handle_frame(frame); }));
  h->client->add_transport("loop", h->faults);
  Harness* raw = h.get();
  h->client->set_clock(&h->clock);
  h->client->set_sleep_fn([raw](Duration d) { raw->clock.advance(d); });
  h->faults->set_sleep_fn([raw](Duration d) { raw->clock.advance(d); });
  h->client->set_invocation_policies(policies);
  auto servant = std::make_shared<orb::DynamicServant>("f::Calc");
  servant->on("add", [](orb::ServerRequest& req) -> Result<void> {
    req.set_result(orb::Value(static_cast<std::int32_t>(
        *req.arg(0).to_int() + *req.arg(1).to_int())));
    return {};
  });
  h->calc = h->server->activate(servant);
  return h;
}

orb::InvocationPolicies no_retry_policies() {
  orb::InvocationPolicies p;
  p.deadline = seconds(2);
  return p;  // max_attempts 1, breaker off
}

orb::InvocationPolicies retry_policies() {
  orb::InvocationPolicies p;
  p.deadline = seconds(2);
  p.retry.max_attempts = 4;
  p.retry.initial_backoff = milliseconds(2);
  p.breaker.enabled = true;
  p.breaker.failure_threshold = 8;
  p.breaker.open_duration = milliseconds(50);
  return p;
}

struct RunResult {
  double success_pct = 0;
  double mean_latency_ms = 0;  // virtual time per call, successes only
  double p99_latency_ms = 0;
  std::uint64_t retries = 0;
};

RunResult run(double loss, const orb::InvocationPolicies& policies,
              std::uint64_t seed) {
  auto h = make_harness(policies);
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.drop_probability = loss;
  plan.delay_probability = 0.2;
  plan.delay_min = milliseconds(1);
  plan.delay_max = milliseconds(5);
  if (plan.active()) h->faults->injector().arm(plan);

  constexpr int kCalls = 500;
  RunResult out;
  std::vector<Duration> latencies;
  latencies.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i) {
    const TimePoint before = h->clock.now();
    auto r = h->client->call(h->calc, "add",
                             {orb::Value(std::int32_t{i}),
                              orb::Value(std::int32_t{1})},
                             {.idempotent = true});
    if (r.ok()) latencies.push_back(h->clock.now() - before);
  }
  out.success_pct = 100.0 * latencies.size() / kCalls;
  if (!latencies.empty()) {
    Duration sum = 0;
    for (Duration d : latencies) sum += d;
    out.mean_latency_ms =
        to_seconds(sum / static_cast<Duration>(latencies.size())) * 1e3;
    std::sort(latencies.begin(), latencies.end());
    const std::size_t p99 =
        std::min(latencies.size() - 1, latencies.size() * 99 / 100);
    out.p99_latency_ms = to_seconds(latencies[p99]) * 1e3;
  }
  out.retries = h->client->metrics().counter("orb.retries").value();
  return out;
}

/// Wall-clock ns per call with the decorator disarmed and the policies
/// disabled, against the same pair calling the loopback directly. The
/// difference is the price of leaving the resilience machinery compiled
/// in but switched off.
double wall_ns_per_call(bool through_faults) {
  auto repo = std::make_shared<idl::InterfaceRepository>();
  (void)repo->register_idl(kCalcIdl);
  auto net = std::make_shared<orb::LoopbackNetwork>();
  orb::Orb server(NodeId{1}, repo);
  orb::Orb client(NodeId{2}, repo);
  server.set_endpoint(net->register_endpoint(
      [&server](BytesView frame) { return server.handle_frame(frame); }));
  auto faults = std::make_shared<fault::FaultyTransport>(net);
  if (through_faults)
    client.add_transport("loop", faults);  // disarmed: pure pass-through
  else
    client.add_transport("loop", net);
  auto servant = std::make_shared<orb::DynamicServant>("f::Calc");
  servant->on("add", [](orb::ServerRequest& req) -> Result<void> {
    req.set_result(orb::Value(static_cast<std::int32_t>(
        *req.arg(0).to_int() + *req.arg(1).to_int())));
    return {};
  });
  orb::ObjectRef calc = server.activate(servant);

  constexpr int kWarmup = 2000;
  constexpr int kTimed = 20000;
  for (int i = 0; i < kWarmup; ++i)
    (void)client.call(calc, "add",
                      {orb::Value(std::int32_t{i}), orb::Value(std::int32_t{1})});
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kTimed; ++i)
    (void)client.call(calc, "add",
                      {orb::Value(std::int32_t{i}), orb::Value(std::int32_t{1})});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         kTimed;
}

}  // namespace

int main() {
  BenchReport report("resilience");
  std::printf("E12: invocation resilience -- success rate and virtual "
              "latency vs message loss (500 idempotent calls, seed 0xe12)\n\n");
  std::printf("%6s | %22s | %44s\n", "", "no policies",
              "retry+backoff+breaker");
  std::printf("%6s | %9s %12s | %9s %12s %12s %9s\n", "loss", "success",
              "mean", "success", "mean", "p99", "retries");
  std::printf("-------+------------------------+---------------------------"
              "-------------------\n");
  for (double loss : {0.0, 0.05, 0.10, 0.20}) {
    const RunResult bare = run(loss, no_retry_policies(), 0xe12);
    const RunResult hard = run(loss, retry_policies(), 0xe12);
    std::printf(
        "%5.0f%% | %8.1f%% %9.2f ms | %8.1f%% %9.2f ms %9.2f ms %9llu\n",
        loss * 100, bare.success_pct, bare.mean_latency_ms, hard.success_pct,
        hard.mean_latency_ms, hard.p99_latency_ms,
        static_cast<unsigned long long>(hard.retries));
    const std::string tag = std::to_string(static_cast<int>(loss * 100));
    report.set("success_pct.no_retry.loss" + tag, bare.success_pct);
    report.set("success_pct.retry.loss" + tag, hard.success_pct);
    report.set("latency_ms.no_retry.loss" + tag, bare.mean_latency_ms);
    report.set("latency_ms.retry.loss" + tag, hard.mean_latency_ms);
    report.set("p99_latency_ms.retry.loss" + tag, hard.p99_latency_ms);
    report.count("retries.loss" + tag, hard.retries);
  }

  std::printf("\nE12b: overhead of the disabled machinery (disarmed "
              "decorator, policy-free invoke)\n");
  // Interleaved best-of-5: per-call cost is ~2 us, so scheduler noise
  // swamps a single run; the min is the stable estimate of the true cost.
  double direct_ns = wall_ns_per_call(false);
  double decorated_ns = wall_ns_per_call(true);
  for (int rep = 1; rep < 5; ++rep) {
    direct_ns = std::min(direct_ns, wall_ns_per_call(false));
    decorated_ns = std::min(decorated_ns, wall_ns_per_call(true));
  }
  std::printf("%24s : %8.0f ns/call\n", "direct loopback", direct_ns);
  std::printf("%24s : %8.0f ns/call (%+.1f%%)\n", "disarmed FaultyTransport",
              decorated_ns, 100.0 * (decorated_ns - direct_ns) / direct_ns);
  report.set("overhead.direct_ns_per_call", direct_ns);
  report.set("overhead.disarmed_ns_per_call", decorated_ns);

  std::printf("\nshape check: retry column stays >= 99%% success through "
              "10%% loss; no-policy column tracks (1 - loss)^2 per "
              "roundtrip; disarmed overhead within noise of direct.\n");
  return 0;
}
