// E3 -- Soft vs strong network consistency (§2.4.3).
//
// Claim: "This soft consistency protocol leads to lower bandwidth
// utilization and better scalability." We measure steady-state protocol
// bytes per node per second for (a) the CORBA-LC hierarchical soft-
// consistency protocol (periodic heartbeats with piggybacked digests along
// the tree) and (b) a strong-consistency baseline that replicates every
// registry to every node. We also report the price of softness: the delay
// until a freshly installed component becomes visible to a remote node.
#include <cstdio>

#include "bench_report.hpp"
#include "sim_world.hpp"

using namespace clc;
using namespace clc::bench;

namespace {

double steady_state_bytes_per_node_s(CohesionConfig::Mode mode,
                                     std::size_t n) {
  SimWorld w(bench_config(mode), 5);
  w.build(n);
  // Every node advertises a handful of components (realistic digests).
  for (std::size_t i = 0; i < n; ++i) {
    for (int c = 0; c < 4; ++c)
      w.peer(i).components.push_back(ComponentSummary{
          "comp." + std::to_string(i) + "." + std::to_string(c),
          Version{1, 0, 0}, true, 0});
  }
  w.run_for(seconds(40));  // formation transient
  w.net().reset_stats();
  constexpr Duration kWindow = seconds(60);
  w.run_for(kWindow);
  return static_cast<double>(w.net().stats().bytes_sent) /
         static_cast<double>(n) / to_seconds(kWindow);
}

double visibility_delay_s(CohesionConfig::Mode mode, std::size_t n) {
  SimWorld w(bench_config(mode), 6);
  w.build(n);
  w.run_for(seconds(40));
  // Install on the last node; poll from node 0 until visible.
  const TimePoint installed_at = w.sim().now();
  w.peer(n - 1).components.push_back(
      ComponentSummary{"fresh.component", Version{1, 0, 0}, true, 0});
  ComponentQuery q;
  q.name_pattern = "fresh.component";
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto hits = w.query(0, q);
    if (!hits.empty()) return to_seconds(w.sim().now() - installed_at);
    w.run_for(w.config().heartbeat / 2);
  }
  return -1;
}

}  // namespace

int main() {
  BenchReport report("consistency");
  std::printf("E3: soft (hierarchical) vs strong consistency -- steady-state "
              "bandwidth\n");
  std::printf("(4 components/node, heartbeat %llds, 60s steady-state window)\n\n",
              static_cast<long long>(seconds(2) / seconds(1)));
  std::printf("%6s | %18s | %18s | %8s\n", "nodes", "soft B/node/s",
              "strong B/node/s", "ratio");
  std::printf("-------+--------------------+--------------------+---------\n");
  for (std::size_t n : {8u, 32u, 128u, 512u, 1024u}) {
    const double soft =
        steady_state_bytes_per_node_s(CohesionConfig::Mode::hierarchical, n);
    const double strong =
        steady_state_bytes_per_node_s(CohesionConfig::Mode::strong, n);
    std::printf("%6zu | %18.0f | %18.0f | %7.1fx\n", n, soft, strong,
                strong / (soft > 0 ? soft : 1));
    const std::string suffix = ".n" + std::to_string(n);
    report.set("soft.bytes_per_node_s" + suffix, soft);
    report.set("strong.bytes_per_node_s" + suffix, strong);
  }

  std::printf("\nE3b: the price of softness -- new-component visibility "
              "delay\n");
  std::printf("%6s | %16s | %16s\n", "nodes", "soft delay", "strong delay");
  for (std::size_t n : {32u, 256u}) {
    const double soft =
        visibility_delay_s(CohesionConfig::Mode::hierarchical, n);
    const double strong = visibility_delay_s(CohesionConfig::Mode::strong, n);
    std::printf("%6zu | %13.2f s | %13.2f s\n", n, soft, strong);
    const std::string suffix = ".n" + std::to_string(n);
    report.set("soft.visibility_delay_s" + suffix, soft);
    report.set("strong.visibility_delay_s" + suffix, strong);
  }
  std::printf("\nshape check: strong bandwidth grows O(N) per node (O(N^2) "
              "total); soft stays ~flat per node. Strong is visible almost "
              "immediately; soft within a few heartbeats.\n");
  return 0;
}
