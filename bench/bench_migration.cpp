// E7 -- Fetch-and-run-locally vs use-remotely; the migration crossover
// (§2.4.3, §3.1).
//
// Claim: "a component decoding a MPEG video stream would work much faster
// if it is installed locally." Fetching costs a one-time package transfer;
// remote use costs per-call traffic proportional to the stream. We measure
// actual transport bytes for both strategies across stream lengths, and
// derive the modeled transfer time on several link speeds to locate the
// crossover the placement policy must hit.
#include <cstdio>

#include "bench_report.hpp"
#include "core/node.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;

namespace {

struct Traffic {
  std::uint64_t fetch_bytes = 0;   // one-time package move
  std::uint64_t stream_bytes = 0;  // per-call traffic for `frames` calls
};

/// Measure transport bytes for decoding `frames` frames remotely vs the
/// one-time cost of fetching the package.
Traffic measure(int frames) {
  CohesionConfig cohesion;
  cohesion.heartbeat = seconds(1);
  LocalNetwork net(cohesion);
  Node& server = net.add_node();
  Node& viewer = net.add_node();
  net.settle();
  (void)server.install(clc::testing::counter_package());  // decoder stand-in
  net.settle();

  Traffic t;
  // Remote use: stream of `frames` invocations (each reply carries a
  // decoded frame -- modeled by the per-call overhead of our counter; a
  // real decoder reply is bigger, so this *understates* remote cost).
  auto remote = viewer.resolve("demo.counter", VersionConstraint{},
                               Binding::remote);
  if (!remote.ok()) return t;
  net.transport().reset_stats();
  for (int i = 0; i < frames; ++i)
    (void)viewer.orb().call(remote->primary, "increment");
  t.stream_bytes = net.transport().stats().bytes;

  // Fetch: one-time package transfer (+ the same calls, now local = free).
  net.transport().reset_stats();
  (void)viewer.fetch_component(server.id(), "demo.counter", Version{1, 0, 0});
  t.fetch_bytes = net.transport().stats().bytes;
  return t;
}

}  // namespace

int main() {
  clc::bench::BenchReport report("migration");
  std::printf("E7: remote use vs fetch-and-install -- traffic and "
              "crossover\n\n");
  std::printf("%8s | %14s | %14s | %s\n", "frames", "remote bytes",
              "fetch bytes", "cheaper");
  std::printf("---------+----------------+----------------+---------\n");
  int crossover = -1;
  for (int frames : {1, 5, 10, 25, 50, 100, 250, 500}) {
    const Traffic t = measure(frames);
    const bool fetch_wins = t.fetch_bytes < t.stream_bytes;
    if (fetch_wins && crossover < 0) crossover = frames;
    std::printf("%8d | %14llu | %14llu | %s\n", frames,
                static_cast<unsigned long long>(t.stream_bytes),
                static_cast<unsigned long long>(t.fetch_bytes),
                fetch_wins ? "fetch" : "remote");
    const std::string suffix = ".frames" + std::to_string(frames);
    report.set("remote.stream_bytes" + suffix, static_cast<double>(t.stream_bytes));
    report.set("fetch.package_bytes" + suffix, static_cast<double>(t.fetch_bytes));
  }
  std::printf("\ncrossover: fetching pays off from ~%d calls on.\n", crossover);
  report.set("crossover_frames", crossover);

  std::printf("\nE7b: modeled transfer time of the one-time fetch on slow "
              "links (compression matters, §2.3)\n");
  const Traffic t = measure(1);
  std::printf("%14s | %12s\n", "link", "fetch time");
  for (auto [name, kbps] : {std::pair{"56 kbit/s", 56.0},
                            std::pair{"1 Mbit/s", 1000.0},
                            std::pair{"100 Mbit/s", 100000.0}}) {
    const double fetch_s =
        static_cast<double>(t.fetch_bytes) * 8.0 / (kbps * 1000.0);
    std::printf("%14s | %10.2f s\n", name, fetch_s);
    report.set("fetch_time_s.kbps" + std::to_string(static_cast<int>(kbps)),
               fetch_s);
  }
  std::printf("\nshape check: remote cost grows linearly with stream length; "
              "fetch is a constant -- exactly the paper's argument for "
              "migrating the MPEG decoder next to its consumer.\n");
  return 0;
}
