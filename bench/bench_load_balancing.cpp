// E8 -- Resource-aware placement + migration achieve load balancing
// (§2.4.2, §2.4.3).
//
// Claim: the Distributed Registry performs "network resource monitoring and
// component instance migration and replication to achieve load balancing".
//
// Setup: 16 nodes; 64 instance placements arrive while nodes' ambient load
// drifts (the owner uses their workstation). Policies:
//   random        -- place on a random node that admits the instance;
//   least-loaded  -- Resource-Manager headroom placement;
//   + migration   -- least-loaded placement plus periodic rebalancing that
//                    migrates instances off the most loaded node.
// Metric: max and standard deviation of node CPU load after arrivals.
#include <cmath>
#include <cstdio>

#include <algorithm>

#include "bench_report.hpp"
#include "core/node.hpp"
#include "support/test_components.hpp"
#include "util/rng.hpp"

using namespace clc;
using namespace clc::core;

namespace {

struct Outcome {
  double max_load = 0;
  double stddev = 0;
  int failures = 0;
  int migrations = 0;
};

Outcome run(int policy /*0=random,1=least,2=least+migration*/) {
  CohesionConfig cohesion;
  cohesion.heartbeat = seconds(1);
  LocalNetwork net(cohesion);
  std::vector<Node*> nodes;
  Rng rng(55);
  for (int i = 0; i < 16; ++i) {
    NodeProfile p;
    p.cpu_power = 1.0;
    Node& n = net.add_node(p);
    nodes.push_back(&n);
  }
  net.settle();
  for (Node* n : nodes) (void)n->install(clc::testing::counter_package());
  net.settle();

  pkg::ComponentDescription unit;
  unit.qos.max_cpu_load = 0.1;

  Outcome o;
  std::map<Node*, std::vector<InstanceId>> placed;
  for (int arrival = 0; arrival < 64; ++arrival) {
    // Ambient load drift: someone starts/stops using a workstation.
    if (arrival % 8 == 0) {
      Node* n = nodes[rng.next_below(nodes.size())];
      n->resources().set_ambient_cpu_load(rng.next_double() * 0.6);
    }

    Node* target = nullptr;
    if (policy == 0) {
      // Random among admitting nodes.
      for (int attempt = 0; attempt < 32 && target == nullptr; ++attempt) {
        Node* candidate = nodes[rng.next_below(nodes.size())];
        if (candidate->resources().can_host(unit)) target = candidate;
      }
    } else {
      double best = -1;
      for (Node* n : nodes) {
        if (!n->resources().can_host(unit)) continue;
        const double headroom = n->resources().cpu_headroom();
        if (headroom > best) {
          best = headroom;
          target = n;
        }
      }
    }
    if (target == nullptr) {
      ++o.failures;
      continue;
    }
    auto id = target->container().create("demo.counter", VersionConstraint{});
    if (!id.ok()) {
      ++o.failures;
      continue;
    }
    placed[target].push_back(*id);

    // Rebalancing pass: migrate one instance from the most to the least
    // loaded node when the spread is large.
    if (policy == 2 && arrival % 8 == 7) {
      Node* hottest = *std::max_element(
          nodes.begin(), nodes.end(), [](Node* a, Node* b) {
            return a->resources().load().cpu_load <
                   b->resources().load().cpu_load;
          });
      Node* coolest = *std::min_element(
          nodes.begin(), nodes.end(), [](Node* a, Node* b) {
            return a->resources().load().cpu_load <
                   b->resources().load().cpu_load;
          });
      if (hottest != coolest && !placed[hottest].empty() &&
          hottest->resources().load().cpu_load -
                  coolest->resources().load().cpu_load >
              0.25) {
        const InstanceId victim = placed[hottest].back();
        auto moved = hottest->migrate_instance(victim, coolest->id());
        if (moved.ok()) {
          placed[hottest].pop_back();
          placed[coolest].push_back(InstanceId{static_cast<std::uint64_t>(
              std::stoull(moved->instance_token))});
          ++o.migrations;
        }
      }
    }
  }

  double total = 0;
  for (Node* n : nodes) {
    const double load = n->resources().load().cpu_load;
    o.max_load = std::max(o.max_load, load);
    total += load;
  }
  const double mean = total / static_cast<double>(nodes.size());
  double var = 0;
  for (Node* n : nodes) {
    const double d = n->resources().load().cpu_load - mean;
    var += d * d;
  }
  o.stddev = std::sqrt(var / static_cast<double>(nodes.size()));
  return o;
}

}  // namespace

int main() {
  clc::bench::BenchReport report("load_balancing");
  std::printf("E8: load balancing -- placement policy comparison\n");
  std::printf("(16 nodes, 64 arrivals of 0.1-CPU instances, drifting ambient "
              "load)\n\n");
  std::printf("%24s | %9s | %8s | %9s | %10s\n", "policy", "max load",
              "stddev", "failures", "migrations");
  std::printf("-------------------------+-----------+----------+-----------+-----------\n");
  const char* names[] = {"random", "least-loaded",
                         "least-loaded + migration"};
  const char* keys[] = {"random", "least_loaded", "least_loaded_migration"};
  for (int policy = 0; policy < 3; ++policy) {
    const Outcome o = run(policy);
    std::printf("%24s | %9.2f | %8.3f | %9d | %10d\n", names[policy],
                o.max_load, o.stddev, o.failures, o.migrations);
    const std::string prefix = keys[policy];
    report.set(prefix + ".max_load", o.max_load);
    report.set(prefix + ".stddev", o.stddev);
    report.set(prefix + ".failures", o.failures);
    report.set(prefix + ".migrations", o.migrations);
  }
  std::printf("\nshape check: resource-aware placement lowers the load "
              "spread; migration tightens it further under drift.\n");
  return 0;
}
