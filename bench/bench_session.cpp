// E16 -- Session layer: name-resolution cost, rebind latency, and the
// availability gap between a session client and a bare-Orb client across
// a crash failover (DESIGN.md §14).
//
// Five nodes, a stateful counter on node 5, a session client on node 2
// whose replica list spans every node's Directory servant:
//
//   resolve cold     session cache miss -> directory lookup round trip
//                    (wall-clock µs per resolve, cache invalidated between
//                    iterations);
//   resolve cached   session cache hit, no network crossing;
//   rebind           crash the hosting node mid-traffic and measure the
//                    virtual seconds from the kill to the first successful
//                    session call -- detection + death verdict + checkpoint
//                    restore + directory push, all under one blocked call;
//   availability     session calls vs bare-Orb calls through the same
//                    crash window: the session must surface zero errors.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "core/node.hpp"
#include "session/session.hpp"
#include "support/test_components.hpp"

using namespace clc;
using namespace clc::core;
using clc::bench::BenchReport;
using clc::testing::counter_package;

namespace {

CohesionConfig cohesion_config() {
  CohesionConfig cfg;
  cfg.heartbeat = seconds(1);
  cfg.group_size = 8;
  cfg.query_timeout = seconds(3);
  return cfg;
}

struct SessionWorld {
  SessionWorld() : net(cohesion_config(), failover_config()) {
    for (int i = 0; i < 5; ++i) nodes.push_back(&net.add_node());
    net.settle();
    host = nodes[4];
    client = nodes[1];
    (void)host->install(counter_package());
    hosted = host->acquire_local("demo.counter", VersionConstraint{});
    net.advance(seconds(5));  // ship checkpoints to the holders

    session::SessionConfig cfg;
    for (Node* n : nodes) {
      if (auto ref = client->directory_ref(n->id()); ref.ok())
        cfg.directory.push_back(*ref);
    }
    session = std::make_unique<session::Session>(client->orb(), cfg);
    session->set_clock(&net.clock());
    session->set_sleep_fn([this](Duration d) { net.advance(d); });
  }

  static FailoverConfig failover_config() {
    FailoverConfig cfg;
    cfg.checkpoint_interval = seconds(2);
    cfg.replicas = 2;
    return cfg;
  }

  LocalNetwork net;
  std::vector<Node*> nodes;
  Node* host = nullptr;
  Node* client = nullptr;
  Result<BoundComponent> hosted{Error{Errc::bad_state, "unbuilt"}};
  std::unique_ptr<session::Session> session;
};

double wall_us_per_op(int iterations, const std::function<void()>& op) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) op();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         iterations;
}

}  // namespace

int main() {
  BenchReport report("session");
  std::printf("E16: session layer -- resolve cost, rebind latency, "
              "availability across a crash\n(5 nodes, counter on node 5, "
              "session client on node 2, replica list spans all nodes)\n\n");

  // ---------------------------------------------- resolve cold vs cached
  SessionWorld w;
  constexpr int kResolves = 2000;
  const double cold_us = wall_us_per_op(kResolves, [&w] {
    w.session->invalidate("demo.counter");
    (void)w.session->resolve("demo.counter");
  });
  const double cached_us = wall_us_per_op(kResolves, [&w] {
    (void)w.session->resolve("demo.counter");
  });
  std::printf("%-16s | %10s\n", "resolve path", "µs/op");
  std::printf("-----------------+-----------\n");
  std::printf("%-16s | %10.2f\n", "cold (lookup)", cold_us);
  std::printf("%-16s | %10.2f\n", "cached", cached_us);
  report.set("resolve_cold_us", cold_us);
  report.set("resolve_cached_us", cached_us);
  report.set("cold_over_cached",
             cached_us > 0 ? cold_us / cached_us : 0.0);

  // ------------------------------------- rebind latency + availability
  // Traffic before, through, and after a kill of the hosting node. Every
  // session call must succeed; the bare-Orb reference from before the
  // crash keeps failing until the app re-resolves by hand.
  int session_ok = 0, session_total = 0;
  int bare_ok = 0, bare_total = 0;
  auto bare_call = [&w, &bare_ok, &bare_total] {
    ++bare_total;
    if (w.hosted.ok() &&
        w.client->orb()
            .call(w.hosted->primary, "increment", {}, {.idempotent = true})
            .ok())
      ++bare_ok;
  };
  auto session_call = [&w, &session_ok, &session_total] {
    ++session_total;
    session_ok += w.session->call("demo.counter", "increment").ok();
  };
  for (int i = 0; i < 10; ++i) {
    session_call();
    bare_call();
  }

  w.net.crash(w.host->id());
  const TimePoint killed_at = w.net.now();
  session_call();  // blocks inside the rebind loop until failover completes
  const double rebind_s = to_seconds(w.net.now() - killed_at);
  for (int i = 0; i < 9; ++i) {
    session_call();
    bare_call();
  }

  const double session_avail =
      session_total == 0 ? 0 : static_cast<double>(session_ok) / session_total;
  const double bare_avail =
      bare_total == 0 ? 0 : static_cast<double>(bare_ok) / bare_total;
  const std::uint64_t rebinds =
      w.client->orb().metrics().counter("session.rebinds").value();
  const std::uint64_t errors =
      w.client->orb().metrics().counter("session.errors").value();

  std::printf("\n%-20s | %10s\n", "crash failover", "value");
  std::printf("---------------------+-----------\n");
  std::printf("%-20s | %8.2f s\n", "rebind latency", rebind_s);
  std::printf("%-20s | %9.1f%%\n", "session availability", 100 * session_avail);
  std::printf("%-20s | %9.1f%%\n", "bare-Orb availability", 100 * bare_avail);
  std::printf("%-20s | %10llu\n", "session rebinds",
              static_cast<unsigned long long>(rebinds));
  report.set("rebind_s", rebind_s);
  report.set("session_availability", session_avail);
  report.set("bare_availability", bare_avail);
  report.count("session_rebinds", rebinds);
  report.set("session_zero_errors", errors == 0 ? 1.0 : 0.0);

  std::printf("\nshape check: cached resolve costs no network crossing (well "
              "under the cold path), rebind latency tracks death detection "
              "plus one checkpoint restore, and the session hides the crash "
              "completely (100%% availability, zero surfaced errors) while "
              "the bare-Orb client eats an error per call until re-resolved."
              "\n");
  return 0;
}
